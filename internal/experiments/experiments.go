// Package experiments regenerates every figure of the paper's evaluation
// (Sec. VII) against the simulated substrates: each FigN function runs the
// corresponding workload and returns the data series the paper plots.
// EXPERIMENTS.md records paper-vs-measured values for each figure.
//
// Scale note: the paper trains agents for 1e6 TensorFlow steps; the
// CI-scale defaults here train thousands of pure-Go steps with a smaller
// network (the Options fields control this). The comparisons preserve the
// paper's *shape* — algorithm ordering, convergence behaviour, crossover
// points — not its absolute testbed numbers.
package experiments

import (
	"fmt"

	"edgeslice/internal/core"
)

// Series is one named line/scatter in a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Notes  string
}

// Options scales the experiments.
type Options struct {
	// TrainSteps per agent (paper: 1e6; CI default: 6000).
	TrainSteps int
	// Periods of Algorithm 1 to run (paper Fig. 6: 10 periods = 100
	// intervals).
	Periods int
	// Seed drives all randomness.
	Seed int64
	// Hidden/Batch shrink the paper's 128/512 for CPU-speed runs.
	Hidden int
	Batch  int
}

// DefaultOptions returns CI-scale settings.
func DefaultOptions() Options {
	return Options{
		TrainSteps: 12000,
		Periods:    10,
		Seed:       1,
		Hidden:     32,
		Batch:      64,
	}
}

// Validate checks option sanity.
func (o Options) Validate() error {
	if o.TrainSteps <= 0 || o.Periods <= 0 || o.Hidden <= 0 || o.Batch <= 0 {
		return fmt.Errorf("experiments: invalid options %+v", o)
	}
	return nil
}

// systemConfig assembles a core.Config for the prototype-experiment setting
// with the given algorithm.
func (o Options) systemConfig(algo core.Algorithm) core.Config {
	cfg := core.DefaultConfig()
	cfg.Algo = algo
	cfg.TrainSteps = o.TrainSteps
	cfg.Seed = o.Seed
	cfg.DDPG.Hidden = o.Hidden
	cfg.DDPG.BatchSize = o.Batch
	return cfg
}

// runAlgo trains (if needed) and runs one algorithm for the option's period
// count, returning its history.
func (o Options) runAlgo(algo core.Algorithm, mutate func(*core.Config)) (*core.History, error) {
	cfg := o.systemConfig(algo)
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Train(); err != nil {
		return nil, err
	}
	return sys.RunPeriods(o.Periods)
}

// smooth applies a trailing moving average of width w.
func smooth(xs []float64, w int) []float64 {
	if w <= 1 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= w {
			sum -= xs[i-w]
		}
		n := i + 1
		if n > w {
			n = w
		}
		out[i] = sum / float64(n)
	}
	return out
}

func indexSeries(name string, ys []float64) Series {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return Series{Name: name, X: xs, Y: ys}
}

// comparisonAlgos are the three algorithms of Sec. VII-B in plot order.
var comparisonAlgos = []core.Algorithm{core.AlgoEdgeSlice, core.AlgoEdgeSliceNT, core.AlgoTARO}

// Fig6 reproduces "The convergence of algorithms": (a) per-interval system
// performance for EdgeSlice, EdgeSlice-NT and TARO; (b) per-slice
// performance under EdgeSlice against the Umin/T line.
func Fig6(o Options) (*Figure, *Figure, error) {
	if err := o.Validate(); err != nil {
		return nil, nil, err
	}
	figA := &Figure{ID: "fig6a", Title: "System performance vs time interval"}
	var edgeHist *core.History
	for _, algo := range comparisonAlgos {
		h, err := o.runAlgo(algo, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("fig6 %v: %w", algo, err)
		}
		figA.Series = append(figA.Series, indexSeries(algo.String(), smooth(h.SystemPerf, 5)))
		if algo == core.AlgoEdgeSlice {
			edgeHist = h
		}
	}
	figB := &Figure{ID: "fig6b", Title: "Slice performance vs time interval (EdgeSlice)"}
	for i := 0; i < edgeHist.NumSlices; i++ {
		figB.Series = append(figB.Series,
			indexSeries(fmt.Sprintf("Slice %d", i+1), smooth(edgeHist.SlicePerf[i], 5)))
	}
	// The SLA reference line: Umin spread across a period's intervals.
	umin := make([]float64, edgeHist.Intervals())
	for i := range umin {
		umin[i] = -50.0 / float64(edgeHist.T)
	}
	figB.Series = append(figB.Series, indexSeries("Umin/T", umin))
	figA.Notes = "paper: EdgeSlice converges above EdgeSlice-NT and TARO (3.69x / 2.74x gains)"
	figB.Notes = "paper: both slices meet their minimum performance requirement"
	return figA, figB, nil
}
