package experiments

import (
	"fmt"

	"edgeslice/internal/baseline"
	"edgeslice/internal/core"
	"edgeslice/internal/mathutil"
	"edgeslice/internal/netsim"
	"edgeslice/internal/rl"
	"edgeslice/internal/rl/ddpg"
	"edgeslice/internal/traffic"
)

// Fig7 reproduces "The multiple resource orchestrations of EdgeSlice": the
// normalized usage of radio, transport and computing resources per slice
// over time. It returns one figure per resource domain.
func Fig7(o Options) ([]*Figure, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	h, err := o.runAlgo(core.AlgoEdgeSlice, nil)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	figs := make([]*Figure, 0, netsim.NumResources)
	for k := 0; k < netsim.NumResources; k++ {
		fig := &Figure{
			ID:    fmt.Sprintf("fig7%c", 'a'+k),
			Title: fmt.Sprintf("Normalized %s resource usage", netsim.ResourceNames[k]),
			Notes: "paper: slice 1 dominates radio/transport, slice 2 dominates computing",
		}
		for i := 0; i < h.NumSlices; i++ {
			ys := make([]float64, h.Intervals())
			for t := range ys {
				ys[t] = h.Usage[t][i][k]
			}
			fig.Series = append(fig.Series, indexSeries(fmt.Sprintf("Slice %d", i+1), smooth(ys, 5)))
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// trainExperimentAgent trains one DDPG agent for the prototype-experiment
// environment (or its NT variant) and returns it with its state dimension.
func (o Options) trainExperimentAgent(observeQueue bool) (rl.Agent, error) {
	envCfg := netsim.DefaultExperimentConfig()
	envCfg.ObserveQueue = observeQueue
	envCfg.TrainCoordRandom = true
	envCfg.Seed = o.Seed + 104729
	env, err := netsim.New(envCfg)
	if err != nil {
		return nil, err
	}
	dcfg := ddpg.DefaultConfig()
	dcfg.Hidden = o.Hidden
	dcfg.BatchSize = o.Batch
	dcfg.WarmupSteps = 300
	dcfg.NoiseDecay = 0.9995
	dcfg.Seed = o.Seed
	agent, err := ddpg.New(env.StateDim(), env.ActionDim(), dcfg)
	if err != nil {
		return nil, err
	}
	if err := agent.Train(env, o.TrainSteps); err != nil {
		return nil, err
	}
	return agent, nil
}

// runSingleRA evaluates one policy on a single, uncoordinated RA (the
// Fig. 8 setting: "the orchestration agent without any central
// coordination") under the given constant traffic loads, returning the
// history.
func runSingleRA(o Options, algo core.Algorithm, agent rl.Agent, loads []float64, periods int, seed int64) (*core.History, error) {
	envCfg := netsim.DefaultExperimentConfig()
	envCfg.TrainCoordRandom = false
	envCfg.ObserveQueue = algo != core.AlgoEdgeSliceNT
	envCfg.Seed = seed
	envCfg.Sources = make([]traffic.Source, len(loads))
	for i, l := range loads {
		envCfg.Sources[i] = traffic.ConstantSource{Lambda: l}
	}
	env, err := netsim.New(envCfg)
	if err != nil {
		return nil, err
	}
	env.Reset()
	h := core.NewHistory(envCfg.NumSlices, 1, envCfg.T)
	for p := 0; p < periods; p++ {
		for t := 0; t < envCfg.T; t++ {
			var act []float64
			switch algo {
			case core.AlgoEdgeSlice, core.AlgoEdgeSliceNT:
				act = agent.Act(env.State())
			case core.AlgoTARO:
				act, err = baseline.TARO(env.QueueLens(), netsim.NumResources)
				if err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("fig8: unsupported algorithm %v", algo)
			}
			res, err := env.StepInterval(act)
			if err != nil {
				return nil, err
			}
			var sys float64
			usage := make([][]float64, envCfg.NumSlices)
			slicePerf := make([]float64, envCfg.NumSlices)
			for i := 0; i < envCfg.NumSlices; i++ {
				sys += res.Perf[i]
				slicePerf[i] = res.Perf[i]
				usage[i] = make([]float64, netsim.NumResources)
				for k := 0; k < netsim.NumResources; k++ {
					usage[i][k] = res.Effective[i][k]
				}
			}
			h.AddInterval(sys, slicePerf, usage, res.Violation)
		}
		pp := env.PeriodPerf()
		perRA := make([][]float64, envCfg.NumSlices)
		for i := range pp {
			perRA[i] = []float64{pp[i]}
		}
		h.AddPeriod(perRA, make([]bool, envCfg.NumSlices), 0, 0)
	}
	return h, nil
}

// Fig8 reproduces "The performance of orchestration agents": (a) the CDF of
// per-period slice performance under random traffic loads for the three
// algorithms, and (b)-(d) the resource-usage ratio η1/η2 as a function of
// the two slices' traffic loads for EdgeSlice, EdgeSlice-NT, and TARO.
func Fig8(o Options) (*Figure, []*Figure, error) {
	if err := o.Validate(); err != nil {
		return nil, nil, err
	}
	edgeAgent, err := o.trainExperimentAgent(true)
	if err != nil {
		return nil, nil, fmt.Errorf("fig8 EdgeSlice agent: %w", err)
	}
	ntAgent, err := o.trainExperimentAgent(false)
	if err != nil {
		return nil, nil, fmt.Errorf("fig8 NT agent: %w", err)
	}
	agents := map[core.Algorithm]rl.Agent{
		core.AlgoEdgeSlice:   edgeAgent,
		core.AlgoEdgeSliceNT: ntAgent,
		core.AlgoTARO:        nil,
	}

	// (a) CDF of per-period slice performance under random loads.
	cdfFig := &Figure{
		ID:    "fig8a",
		Title: "CDF of slice performance under random traffic",
		Notes: "paper: 80% of EdgeSlice slice-performance above -30 vs 11% (TARO) and 55% (NT)",
	}
	rng := mathutil.NewRNG(o.Seed + 5)
	type load2 struct{ a, b float64 }
	loads := make([]load2, 24)
	for i := range loads {
		loads[i] = load2{5 + rng.Float64()*15, 5 + rng.Float64()*15}
	}
	for _, algo := range comparisonAlgos {
		var samples []float64
		for li, l := range loads {
			h, err := runSingleRA(o, algo, agents[algo], []float64{l.a, l.b}, 3, o.Seed+int64(li))
			if err != nil {
				return nil, nil, fmt.Errorf("fig8a %v: %w", algo, err)
			}
			// Per-period per-slice performance normalized per interval.
			for _, period := range h.PeriodPerf {
				for i := range period {
					samples = append(samples, period[i][0]/float64(h.T))
				}
			}
		}
		pts := mathutil.EmpiricalCDF(samples)
		s := Series{Name: algo.String()}
		for _, p := range pts {
			s.X = append(s.X, p.Value)
			s.Y = append(s.Y, p.Prob)
		}
		cdfFig.Series = append(cdfFig.Series, s)
	}

	// (b)-(d) usage ratio vs traffic loads.
	grid := []float64{5, 10, 15, 20}
	var ratioFigs []*Figure
	for fi, algo := range comparisonAlgos {
		fig := &Figure{
			ID:    fmt.Sprintf("fig8%c", 'b'+fi),
			Title: fmt.Sprintf("Resource usage ratio η1/η2 vs traffic (%s)", algo),
		}
		for _, lb := range grid {
			s := Series{Name: fmt.Sprintf("slice2 load %.0f", lb)}
			for _, la := range grid {
				h, err := runSingleRA(o, algo, agents[algo], []float64{la, lb}, 3, o.Seed+77)
				if err != nil {
					return nil, nil, fmt.Errorf("fig8 ratio %v: %w", algo, err)
				}
				ratio, err := h.UsageRatio(0, 1, 0)
				if err != nil {
					return nil, nil, err
				}
				s.X = append(s.X, la)
				s.Y = append(s.Y, ratio)
			}
			fig.Series = append(fig.Series, s)
		}
		switch algo {
		case core.AlgoEdgeSlice:
			fig.Notes = "paper: ratio tracks both traffic load and per-domain resource needs"
		case core.AlgoEdgeSliceNT:
			fig.Notes = "paper: ratio is constant — the NT agent cannot observe traffic"
		case core.AlgoTARO:
			fig.Notes = "paper: ratio tracks traffic only, blind to per-domain needs"
		}
		ratioFigs = append(ratioFigs, fig)
	}
	return cdfFig, ratioFigs, nil
}
