package experiments

import (
	"fmt"
	"math"

	"edgeslice/internal/core"
	"edgeslice/internal/mathutil"
	"edgeslice/internal/netsim"
)

// Fig11 reproduces "The compatibility of EdgeSlice": (a) system performance
// vs the α exponent of the queue performance function U = −l^α; (b) the CDF
// of normalized system performance under the service-time performance
// function that deliberately ignores queue state.
func Fig11(o Options) (*Figure, *Figure, error) {
	if err := o.Validate(); err != nil {
		return nil, nil, err
	}
	figA := &Figure{
		ID:    "fig11a",
		Title: "System performance vs performance-function exponent alpha",
		Notes: "paper: EdgeSlice stays best across alpha in {1.0, 1.5, 2.0, 2.5}",
	}
	alphas := []float64{1.0, 1.5, 2.0, 2.5}
	for _, algo := range comparisonAlgos {
		s := Series{Name: algo.String()}
		for _, alpha := range alphas {
			h, err := o.runAlgo(algo, func(c *core.Config) {
				c.EnvTemplate.Alpha = alpha
				// Keep the reward's normalized dynamic range independent
				// of α: |U| tops out at MaxQueue^α, so the normalization
				// constants scale by MaxQueue^(α−2) relative to the
				// defaults tuned at α = 2.
				scale := math.Pow(float64(c.EnvTemplate.MaxQueue), alpha-2)
				c.EnvTemplate.PerfNorm *= scale
				c.EnvTemplate.CoordSpan *= scale
				c.EnvTemplate.CoordNorm *= scale
			})
			if err != nil {
				return nil, nil, fmt.Errorf("fig11a %v alpha=%v: %w", algo, alpha, err)
			}
			mp, err := h.MeanSystemPerf(h.Intervals() / 2)
			if err != nil {
				return nil, nil, err
			}
			s.X = append(s.X, alpha)
			s.Y = append(s.Y, mp)
		}
		figA.Series = append(figA.Series, s)
	}

	figB := &Figure{
		ID:    "fig11b",
		Title: "CDF of normalized system performance (service-time metric)",
		Notes: "paper: EdgeSlice and EdgeSlice-NT coincide (queue state is uninformative); TARO is far worse",
	}
	for _, algo := range comparisonAlgos {
		h, err := o.runAlgo(algo, func(c *core.Config) {
			c.EnvTemplate.Perf = netsim.PerfServiceTime
			c.EnvTemplate.CoordSpan = 50
			c.EnvTemplate.CoordNorm = 50
			c.EnvTemplate.PerfNorm = 1
			if algo.IsLearning() {
				// The service-time landscape is flat wherever the
				// bottleneck domain does not change; give the learners a
				// larger budget to find the boundary allocations.
				c.TrainSteps *= 2
			}
		})
		if err != nil {
			return nil, nil, fmt.Errorf("fig11b %v: %w", algo, err)
		}
		// Normalized system performance: per-interval system performance
		// over the steady half of the run.
		samples := h.SystemPerf[h.Intervals()/2:]
		pts := mathutil.EmpiricalCDF(samples)
		s := Series{Name: algo.String()}
		for _, p := range pts {
			s.X = append(s.X, p.Value)
			s.Y = append(s.Y, p.Prob)
		}
		figB.Series = append(figB.Series, s)
	}
	return figA, figB, nil
}
