package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders a figure's series as an aligned text table, the form
// the benchmark harness prints (one row per X value, one column per
// series). Series with differing X grids are printed sequentially instead.
func WriteTable(w io.Writer, fig *Figure) error {
	if fig == nil || len(fig.Series) == 0 {
		return fmt.Errorf("experiments: empty figure")
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", fig.ID, fig.Title); err != nil {
		return err
	}
	if fig.Notes != "" {
		if _, err := fmt.Fprintf(w, "   (%s)\n", fig.Notes); err != nil {
			return err
		}
	}
	if sharedGrid(fig.Series) {
		header := []string{"x"}
		for _, s := range fig.Series {
			header = append(header, s.Name)
		}
		if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
			return err
		}
		for i := range fig.Series[0].X {
			row := []string{fmt.Sprintf("%.4g", fig.Series[0].X[i])}
			for _, s := range fig.Series {
				row = append(row, fmt.Sprintf("%.4g", s.Y[i]))
			}
			if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range fig.Series {
		if _, err := fmt.Fprintf(w, "-- %s --\n", s.Name); err != nil {
			return err
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%.4g\t%.4g\n", s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func sharedGrid(series []Series) bool {
	if len(series) == 0 {
		return false
	}
	n := len(series[0].X)
	for _, s := range series[1:] {
		if len(s.X) != n {
			return false
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				return false
			}
		}
	}
	return true
}

// Steady returns the mean of the last half of a series' Y values — the
// steady-state summary number used when comparing against paper values.
func Steady(s Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	tail := s.Y[len(s.Y)/2:]
	var sum float64
	for _, v := range tail {
		sum += v
	}
	return sum / float64(len(tail))
}
