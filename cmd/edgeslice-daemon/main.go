// Command edgeslice-daemon runs one EdgeSlice component as a network
// process, speaking the RC protocol over TCP: either the central
// performance coordinator (hub) or one decentralized orchestration agent.
// Start one coordinator and one agent per RA — on the same machine or
// across machines — to deploy Algorithm 1 in its genuinely distributed
// form.
//
// Usage:
//
//	edgeslice-daemon -role coordinator -listen :7000 -ras 2 -periods 10 [-engine remote|legacy]
//	edgeslice-daemon -role agent -connect host:7000 -ra 0 [-agent agent.json]
//
// Both roles accept -metrics-addr to serve live telemetry (/metrics in
// Prometheus text format, /healthz as JSON, and /debug/pprof) while the
// run progresses: the coordinator exports run progress, residuals,
// per-slice SLA state, and hub connection/report counters; the agent
// exports its report/coordination counters. The remote-engine coordinator
// additionally accepts -history (append-only on-disk history log,
// replayable with edgeslice-exp -replay) and -stream-window
// (bounded-memory streaming history — prints a steady-state summary
// instead of the per-period table).
//
// The coordinator's default engine ("remote") consumes the per-interval
// records agents attach to their reports and records the same History a
// local run produces: per-interval system/slice performance, usage,
// violations, per-period SLA flags, and primal/dual residuals. Pass
// -engine legacy for the perf-grid-only driver (rcnet.RunCoordinator),
// e.g. when coordinating pre-engine agent builds whose reports carry no
// interval records, or topologies the daemon's environment presets don't
// cover. (The in-process engines — serial, parallel, and the batched
// cross-RA inference engine — are edgeslice-sim's -engine domain: here
// every RA is its own process, so there is no local action path to batch.)
//
// The -agent file may be either a full-fidelity checkpoint written by
// edgeslice-train (format edgeslice-checkpoint-v2) or a legacy v1 actor
// snapshot (edgeslice-actor-v1) from older builds; both load transparently.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeslice-daemon: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role      = flag.String("role", "", "coordinator or agent (required)")
		listen    = flag.String("listen", ":7000", "coordinator listen address")
		connect   = flag.String("connect", "127.0.0.1:7000", "agent: coordinator address")
		ras       = flag.Int("ras", 2, "coordinator: number of RAs")
		slices    = flag.Int("slices", 2, "number of slices")
		ra        = flag.Int("ra", 0, "agent: this RA's id")
		periods   = flag.Int("periods", 10, "coordinator: periods to run")
		agentFile = flag.String("agent", "", "agent: trained checkpoint or v1 actor JSON (from edgeslice-train); trains fresh if empty")
		train     = flag.Int("train", 12000, "agent: training steps when no -agent file given")
		seed      = flag.Int64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-round network timeout")
		engine    = flag.String("engine", "remote", "coordinator: remote (full history) or legacy (perf grids only)")

		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		streamWindow = flag.Int("stream-window", 0, "coordinator (remote): bounded-memory streaming history with this ring window")
		historyPath  = flag.String("history", "", "coordinator (remote): write the run's on-disk history log to this file")
	)
	flag.Parse()

	switch *role {
	case "coordinator":
		switch *engine {
		case "remote", "":
			return runCoordinatorRemote(*listen, *slices, *ras, *periods, *timeout, *metricsAddr, *streamWindow, *historyPath)
		case "legacy":
			if *streamWindow != 0 || *historyPath != "" {
				return fmt.Errorf("-stream-window and -history need the remote engine's full history; the legacy engine records perf grids only")
			}
			return runCoordinator(*listen, *slices, *ras, *periods, *timeout, *metricsAddr)
		default:
			return fmt.Errorf("-engine must be remote or legacy, got %q", *engine)
		}
	case "agent":
		if *streamWindow != 0 || *historyPath != "" {
			return fmt.Errorf("-stream-window and -history apply to the coordinator role; the agent keeps no history")
		}
		return runAgent(*connect, *ra, *slices, *agentFile, *train, *seed, *timeout, *metricsAddr)
	default:
		return fmt.Errorf("-role must be coordinator or agent")
	}
}

// runCoordinatorRemote drives the run through the remote execution engine:
// distributed agents report per-interval records and the coordinator
// records the same History a local run produces.
func runCoordinatorRemote(listen string, slices, ras, periods int, timeout time.Duration, metricsAddr string, streamWindow int, historyPath string) error {
	cfg := edgeslice.DefaultConfig()
	if slices != cfg.EnvTemplate.NumSlices {
		return fmt.Errorf("the remote engine's presets support %d slices, got %d; use -engine legacy for other topologies",
			cfg.EnvTemplate.NumSlices, slices)
	}
	cfg.NumRAs = ras
	sys, err := edgeslice.NewSystem(cfg) // shape + coordinator only; envs and agents live remotely
	if err != nil {
		return err
	}
	rec := edgeslice.RecordOptions{StreamWindow: streamWindow}
	if historyPath != "" {
		hlog, err := edgeslice.CreateHistoryLog(historyPath, slices, ras, cfg.EnvTemplate.T)
		if err != nil {
			return err
		}
		defer func() { _ = hlog.Close() }()
		rec.Log = hlog
	}
	sys.SetRecording(rec)
	hub, err := edgeslice.NewHub(listen, slices, ras)
	if err != nil {
		return err
	}
	if metricsAddr != "" {
		reg := edgeslice.NewTelemetryRegistry()
		sys.EnableTelemetry(reg)
		hub.EnableTelemetry(reg)
		srv, err := edgeslice.StartTelemetry(metricsAddr, reg, func() any { return sys.Health() })
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry on http://%s/metrics\n", srv.Addr())
	}
	exec := edgeslice.NewRemoteExecutor(hub, timeout)
	defer func() { _ = exec.Close() }()
	fmt.Printf("coordinator listening on %s, waiting for %d agents...\n", hub.Addr(), ras)
	if err := hub.WaitRegistered(timeout); err != nil {
		return err
	}
	h, err := sys.RunPeriodsWith(exec, periods)
	if err != nil {
		if h != nil && h.Periods() > 0 {
			fmt.Printf("run failed after %d completed period(s): %v\n", h.Periods(), err)
		}
		return err
	}
	if h.Streaming() {
		if err := printStreamingSummary(h); err != nil {
			return err
		}
		return exec.Close()
	}
	fmt.Println("period | per-slice performance (sum over RAs) | SLA met | residuals")
	for p := 0; p < h.Periods(); p++ {
		perf := make([]float64, h.NumSlices)
		for i := range perf {
			for j := 0; j < h.NumRAs; j++ {
				perf[i] += h.PeriodPerf[p][i][j]
			}
		}
		fmt.Printf("%6d | %v | %v | primal=%.2f dual=%.2f\n",
			p, perf, h.SLAMet[p], h.Primal[p], h.Dual[p])
	}
	mp, err := h.MeanSystemPerf(h.Intervals() / 2)
	if err != nil {
		return err
	}
	sla, err := h.SLASatisfactionRate(0)
	if err != nil {
		return err
	}
	fmt.Printf("\nsteady-state system performance: %.2f per interval\n", mp)
	fmt.Printf("SLA satisfaction: %.0f%%\n", sla*100)
	return exec.Close()
}

// printStreamingSummary reports what a bounded-memory run retains: online
// summaries instead of the full per-period table.
func printStreamingSummary(h *edgeslice.History) error {
	fmt.Printf("streaming history (window %d): %d periods, %d intervals retained as summaries\n",
		h.StreamWindow(), h.Periods(), h.Intervals())
	mp, err := h.MeanSystemPerf(h.Intervals() / 2)
	if err != nil {
		return err
	}
	sla, err := h.SLASatisfactionRate(0)
	if err != nil {
		return err
	}
	fmt.Printf("steady-state system performance: %.2f per interval\n", mp)
	fmt.Printf("SLA satisfaction: %.0f%%\n", sla*100)
	primal, dual := h.LastResiduals()
	fmt.Printf("final residuals: primal=%.2f dual=%.2f\n", primal, dual)
	return nil
}

func runCoordinator(listen string, slices, ras, periods int, timeout time.Duration, metricsAddr string) error {
	hub, err := edgeslice.NewHub(listen, slices, ras)
	if err != nil {
		return err
	}
	defer func() { _ = hub.Shutdown() }()
	if metricsAddr != "" {
		reg := edgeslice.NewTelemetryRegistry()
		hub.EnableTelemetry(reg)
		srv, err := edgeslice.StartTelemetry(metricsAddr, reg, nil)
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry on http://%s/metrics\n", srv.Addr())
	}
	fmt.Printf("coordinator listening on %s, waiting for %d agents...\n", hub.Addr(), ras)
	if err := hub.WaitRegistered(timeout); err != nil {
		return err
	}
	umin := make([]float64, slices)
	for i := range umin {
		umin[i] = -50
	}
	coord, err := edgeslice.NewCoordinator(slices, ras, 1.0, umin)
	if err != nil {
		return err
	}
	history, err := edgeslice.RunCoordinator(hub, coord, periods, timeout)
	if err != nil {
		return err
	}
	for p, perf := range history {
		fmt.Printf("period %d: perf=%v\n", p, perf)
	}
	primal, dual := coord.Residuals()
	fmt.Printf("final residuals: primal=%.3f dual=%.3f\n", primal, dual)
	return hub.Shutdown()
}

func runAgent(connect string, ra, slices int, agentFile string, train int, seed int64, timeout time.Duration, metricsAddr string) error {
	envCfg := edgeslice.DefaultEnvConfig()
	if slices != envCfg.NumSlices {
		return fmt.Errorf("daemon presets support %d slices, got %d", envCfg.NumSlices, slices)
	}
	envCfg.TrainCoordRandom = false
	envCfg.Seed = seed + int64(ra)*7919
	env, err := edgeslice.NewEnv(envCfg)
	if err != nil {
		return err
	}
	env.Reset()

	var policy edgeslice.Agent
	if agentFile != "" {
		f, err := os.Open(agentFile)
		if err != nil {
			return fmt.Errorf("open agent file: %w", err)
		}
		policy, err = edgeslice.LoadAgent(f)
		cerr := f.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
		fmt.Printf("RA %d: loaded policy from %s\n", ra, agentFile)
	} else {
		fmt.Printf("RA %d: training fresh agent (%d steps)...\n", ra, train)
		cfg := edgeslice.DefaultConfig()
		cfg.NumRAs = 1
		cfg.TrainSteps = train
		cfg.Seed = seed + int64(ra)
		sys, err := edgeslice.NewSystem(cfg)
		if err != nil {
			return err
		}
		if err := sys.Train(); err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := edgeslice.SaveAgent(&buf, sys, 0); err != nil {
			return err
		}
		policy, err = edgeslice.LoadAgent(&buf)
		if err != nil {
			return err
		}
	}

	client, err := edgeslice.DialAgent(connect, ra, timeout)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	if metricsAddr != "" {
		reg := edgeslice.NewTelemetryRegistry()
		client.EnableTelemetry(reg)
		srv, err := edgeslice.StartTelemetry(metricsAddr, reg, func() any {
			return map[string]any{"ra": ra, "coordinator": connect, "stats": client.Stats()}
		})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("RA %d: telemetry on http://%s/metrics\n", ra, srv.Addr())
	}
	fmt.Printf("RA %d: connected to %s\n", ra, connect)
	if err := edgeslice.RunAgent(client, env, policy, timeout); err != nil {
		return err
	}
	fmt.Printf("RA %d: coordinator finished, shutting down\n", ra)
	return nil
}
