// Command edgeslice-daemon runs one EdgeSlice component as a network
// process, speaking the RC protocol over TCP: either the central
// performance coordinator (hub) or one decentralized orchestration agent.
// Start one coordinator and one agent per RA — on the same machine or
// across machines — to deploy Algorithm 1 in its genuinely distributed
// form.
//
// Usage:
//
//	edgeslice-daemon -role coordinator -listen :7000 -ras 2 -periods 10
//	edgeslice-daemon -role agent -connect host:7000 -ra 0 [-agent agent.json]
//
// The -agent file may be either a full-fidelity checkpoint written by
// edgeslice-train (format edgeslice-checkpoint-v2) or a legacy v1 actor
// snapshot (edgeslice-actor-v1) from older builds; both load transparently.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeslice-daemon: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role      = flag.String("role", "", "coordinator or agent (required)")
		listen    = flag.String("listen", ":7000", "coordinator listen address")
		connect   = flag.String("connect", "127.0.0.1:7000", "agent: coordinator address")
		ras       = flag.Int("ras", 2, "coordinator: number of RAs")
		slices    = flag.Int("slices", 2, "number of slices")
		ra        = flag.Int("ra", 0, "agent: this RA's id")
		periods   = flag.Int("periods", 10, "coordinator: periods to run")
		agentFile = flag.String("agent", "", "agent: trained checkpoint or v1 actor JSON (from edgeslice-train); trains fresh if empty")
		train     = flag.Int("train", 12000, "agent: training steps when no -agent file given")
		seed      = flag.Int64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-round network timeout")
	)
	flag.Parse()

	switch *role {
	case "coordinator":
		return runCoordinator(*listen, *slices, *ras, *periods, *timeout)
	case "agent":
		return runAgent(*connect, *ra, *slices, *agentFile, *train, *seed, *timeout)
	default:
		return fmt.Errorf("-role must be coordinator or agent")
	}
}

func runCoordinator(listen string, slices, ras, periods int, timeout time.Duration) error {
	hub, err := edgeslice.NewHub(listen, slices, ras)
	if err != nil {
		return err
	}
	defer func() { _ = hub.Shutdown() }()
	fmt.Printf("coordinator listening on %s, waiting for %d agents...\n", hub.Addr(), ras)
	if err := hub.WaitRegistered(timeout); err != nil {
		return err
	}
	umin := make([]float64, slices)
	for i := range umin {
		umin[i] = -50
	}
	coord, err := edgeslice.NewCoordinator(slices, ras, 1.0, umin)
	if err != nil {
		return err
	}
	history, err := edgeslice.RunCoordinator(hub, coord, periods, timeout)
	if err != nil {
		return err
	}
	for p, perf := range history {
		fmt.Printf("period %d: perf=%v\n", p, perf)
	}
	primal, dual := coord.Residuals()
	fmt.Printf("final residuals: primal=%.3f dual=%.3f\n", primal, dual)
	return hub.Shutdown()
}

func runAgent(connect string, ra, slices int, agentFile string, train int, seed int64, timeout time.Duration) error {
	envCfg := edgeslice.DefaultEnvConfig()
	if slices != envCfg.NumSlices {
		return fmt.Errorf("daemon presets support %d slices, got %d", envCfg.NumSlices, slices)
	}
	envCfg.TrainCoordRandom = false
	envCfg.Seed = seed + int64(ra)*7919
	env, err := edgeslice.NewEnv(envCfg)
	if err != nil {
		return err
	}
	env.Reset()

	var policy edgeslice.Agent
	if agentFile != "" {
		f, err := os.Open(agentFile)
		if err != nil {
			return fmt.Errorf("open agent file: %w", err)
		}
		policy, err = edgeslice.LoadAgent(f)
		cerr := f.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
		fmt.Printf("RA %d: loaded policy from %s\n", ra, agentFile)
	} else {
		fmt.Printf("RA %d: training fresh agent (%d steps)...\n", ra, train)
		cfg := edgeslice.DefaultConfig()
		cfg.NumRAs = 1
		cfg.TrainSteps = train
		cfg.Seed = seed + int64(ra)
		sys, err := edgeslice.NewSystem(cfg)
		if err != nil {
			return err
		}
		if err := sys.Train(); err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := edgeslice.SaveAgent(&buf, sys, 0); err != nil {
			return err
		}
		policy, err = edgeslice.LoadAgent(&buf)
		if err != nil {
			return err
		}
	}

	client, err := edgeslice.DialAgent(connect, ra, timeout)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	fmt.Printf("RA %d: connected to %s\n", ra, connect)
	if err := edgeslice.RunAgent(client, env, policy, timeout); err != nil {
		return err
	}
	fmt.Printf("RA %d: coordinator finished, shutting down\n", ra)
	return nil
}
