// Command edgeslice-daemon runs one EdgeSlice component as a network
// process, speaking the RC protocol over TCP: either the central
// performance coordinator (hub) or one decentralized orchestration agent.
// Start one coordinator and one agent per RA — on the same machine or
// across machines — to deploy Algorithm 1 in its genuinely distributed
// form.
//
// Usage:
//
//	edgeslice-daemon -role coordinator -listen :7000 -ras 2 -periods 10 [-engine remote|legacy] [-shards N]
//	edgeslice-daemon -role agent -connect host:7000 -ra 0 [-agent agent.json] [-codec json|binary]
//
// -shards splits the coordinator's hub into N shards, each owning a
// contiguous RA range with its own lock, broadcast-writer pool, and
// report collector, so period fan-out and fan-in parallelize across
// shards; results are bit-identical for any shard count. -codec selects
// the agent's wire encoding — the compact length-prefixed binary codec
// avoids per-frame JSON encode/decode allocations at large RA counts —
// and the coordinator auto-detects each connection's codec, so JSON and
// binary agents mix freely in one run.
//
// Both roles accept -metrics-addr to serve live telemetry (/metrics in
// Prometheus text format, /healthz as JSON, and /debug/pprof) while the
// run progresses: the coordinator exports run progress, residuals,
// per-slice SLA state, hub connection/report counters, and agent liveness;
// the agent exports its report/coordination/heartbeat counters. The
// remote-engine coordinator additionally accepts -history (append-only
// on-disk history log, replayable with edgeslice-exp -replay) and
// -stream-window (bounded-memory streaming history — prints a steady-state
// summary instead of the per-period table).
//
// The coordination plane is fault tolerant. -heartbeat on both roles turns
// on liveness: agents beacon at the given interval and the coordinator
// reaps connections silent for 4× that long, so a dead agent is detected
// without waiting for a broadcast write timeout. -retry-periods lets the
// coordinator retry an in-flight period's collection against the
// re-registered agent set (a reconnecting agent supersedes its stale
// connection and replays the completed periods from its resume frame), and
// -reconnect makes an agent redial after a lost connection. -resume
// restarts a crashed coordinator from its -history log: the completed
// periods are replayed into the ADMM state and the run continues in place,
// bit-identically to a run that never crashed.
//
// The coordinator's default engine ("remote") consumes the per-interval
// records agents attach to their reports and records the same History a
// local run produces: per-interval system/slice performance, usage,
// violations, per-period SLA flags, and primal/dual residuals. Pass
// -engine legacy for the perf-grid-only driver (rcnet.RunCoordinator),
// e.g. when coordinating pre-engine agent builds whose reports carry no
// interval records, or topologies the daemon's environment presets don't
// cover. (The in-process engines — serial, parallel, and the batched
// cross-RA inference engine — are edgeslice-sim's -engine domain: here
// every RA is its own process, so there is no local action path to batch.)
//
// The -agent file may be either a full-fidelity checkpoint written by
// edgeslice-train (format edgeslice-checkpoint-v2) or a legacy v1 actor
// snapshot (edgeslice-actor-v1) from older builds; both load transparently.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeslice-daemon: %v\n", err)
		os.Exit(1)
	}
}

// coordOptions bundles the coordinator role's configuration.
type coordOptions struct {
	listen       string
	slices, ras  int
	shards       int
	periods      int
	timeout      time.Duration
	metricsAddr  string
	streamWindow int
	historyPath  string
	heartbeat    time.Duration
	retryPeriods int
	resume       bool
}

func run() error {
	var (
		role      = flag.String("role", "", "coordinator or agent (required)")
		listen    = flag.String("listen", ":7000", "coordinator listen address")
		connect   = flag.String("connect", "127.0.0.1:7000", "agent: coordinator address")
		ras       = flag.Int("ras", 2, "coordinator: number of RAs")
		slices    = flag.Int("slices", 2, "number of slices")
		ra        = flag.Int("ra", 0, "agent: this RA's id")
		periods   = flag.Int("periods", 10, "coordinator: periods to run")
		agentFile = flag.String("agent", "", "agent: trained checkpoint or v1 actor JSON (from edgeslice-train); trains fresh if empty")
		train     = flag.Int("train", 12000, "agent: training steps when no -agent file given")
		seed      = flag.Int64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-round network timeout")
		engine    = flag.String("engine", "remote", "coordinator: remote (full history) or legacy (perf grids only)")

		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		streamWindow = flag.Int("stream-window", 0, "coordinator (remote): bounded-memory streaming history with this ring window")
		historyPath  = flag.String("history", "", "coordinator (remote): write the run's on-disk history log to this file")

		shards = flag.Int("shards", 1, "coordinator: hub shards (parallel broadcast/collect over contiguous RA ranges; any count is bit-identical)")
		codec  = flag.String("codec", "json", "agent: wire codec, json or binary (the coordinator auto-detects per connection)")

		heartbeat    = flag.Duration("heartbeat", 0, "agent: send liveness heartbeats at this interval; coordinator: reap conns silent for 4x this long")
		retryPeriods = flag.Int("retry-periods", 0, "coordinator (remote): extra collection attempts per period after a timeout, re-broadcast to missing RAs")
		reconnect    = flag.Int("reconnect", 0, "agent: redial attempts after a lost connection (re-registers and resumes mid-run)")
		resume       = flag.Bool("resume", false, "coordinator (remote): resume a crashed run from the -history log instead of starting over")
	)
	flag.Parse()

	switch *role {
	case "coordinator":
		if *reconnect != 0 {
			return fmt.Errorf("-reconnect applies to the agent role")
		}
		if *shards < 1 {
			return fmt.Errorf("-shards must be >= 1, got %d", *shards)
		}
		switch *engine {
		case "remote", "":
			return runCoordinatorRemote(coordOptions{
				listen: *listen, slices: *slices, ras: *ras, shards: *shards,
				periods: *periods, timeout: *timeout, metricsAddr: *metricsAddr,
				streamWindow: *streamWindow, historyPath: *historyPath,
				heartbeat: *heartbeat, retryPeriods: *retryPeriods, resume: *resume,
			})
		case "legacy":
			if *streamWindow != 0 || *historyPath != "" {
				return fmt.Errorf("-stream-window and -history need the remote engine's full history; the legacy engine records perf grids only")
			}
			if *resume || *retryPeriods != 0 {
				return fmt.Errorf("-resume and -retry-periods need the remote engine")
			}
			return runCoordinator(*listen, *slices, *ras, *shards, *periods, *timeout, *metricsAddr, *heartbeat)
		default:
			return fmt.Errorf("-engine must be remote or legacy, got %q", *engine)
		}
	case "agent":
		if *streamWindow != 0 || *historyPath != "" {
			return fmt.Errorf("-stream-window and -history apply to the coordinator role; the agent keeps no history")
		}
		if *resume || *retryPeriods != 0 {
			return fmt.Errorf("-resume and -retry-periods apply to the coordinator role")
		}
		wire, err := edgeslice.ParseCodec(*codec)
		if err != nil {
			return err
		}
		return runAgentLoop(*connect, *ra, *slices, *agentFile, *train, *seed, *timeout, *metricsAddr, *heartbeat, *reconnect, wire)
	default:
		return fmt.Errorf("-role must be coordinator or agent")
	}
}

// runCoordinatorRemote drives the run through the remote execution engine:
// distributed agents report per-interval records and the coordinator
// records the same History a local run produces. With -resume it restarts
// from the history log: the completed periods are replayed into the ADMM
// state, re-registering agents receive the replay as their resume frame,
// and only the remaining periods run live.
func runCoordinatorRemote(o coordOptions) error {
	cfg := edgeslice.DefaultConfig()
	if o.slices != cfg.EnvTemplate.NumSlices {
		return fmt.Errorf("the remote engine's presets support %d slices, got %d; use -engine legacy for other topologies",
			cfg.EnvTemplate.NumSlices, o.slices)
	}
	cfg.NumRAs = o.ras
	sys, err := edgeslice.NewSystem(cfg) // shape + coordinator only; envs and agents live remotely
	if err != nil {
		return err
	}
	rec := edgeslice.RecordOptions{StreamWindow: o.streamWindow}
	var prefix *edgeslice.History
	var zs, ys [][][]float64
	if o.resume {
		if o.historyPath == "" {
			return fmt.Errorf("-resume needs the -history log to resume from")
		}
		if o.streamWindow != 0 {
			return fmt.Errorf("-resume replays the exact on-disk log; it does not combine with -stream-window")
		}
		hlog, pre, err := edgeslice.OpenHistoryLogAppend(o.historyPath)
		if err != nil {
			return err
		}
		defer func() { _ = hlog.Close() }()
		if zs, ys, err = sys.PrimeFromHistory(pre); err != nil {
			return err
		}
		prefix = pre
		rec.Log = hlog
		fmt.Printf("resuming from %s: %d completed period(s) replayed\n", o.historyPath, pre.Periods())
	} else if o.historyPath != "" {
		hlog, err := edgeslice.CreateHistoryLog(o.historyPath, o.slices, o.ras, cfg.EnvTemplate.T)
		if err != nil {
			return err
		}
		defer func() { _ = hlog.Close() }()
		rec.Log = hlog
	}
	sys.SetRecording(rec)
	hub, err := edgeslice.NewShardedHub(o.listen, o.slices, o.ras, o.shards)
	if err != nil {
		return err
	}
	if prefix != nil {
		// Prime before any agent can register, so every registration —
		// including the first — receives the full replay in its resume
		// frame.
		if err := hub.PrimeResume(prefix.Periods(), zs, ys); err != nil {
			_ = hub.Shutdown()
			return err
		}
	}
	if o.heartbeat > 0 {
		hub.SetLiveness(4 * o.heartbeat)
	}
	sys.SetLiveness(hub.Liveness)
	if o.metricsAddr != "" {
		reg := edgeslice.NewTelemetryRegistry()
		sys.EnableTelemetry(reg)
		hub.EnableTelemetry(reg)
		srv, err := edgeslice.StartTelemetry(o.metricsAddr, reg, func() any {
			return map[string]any{"system": sys.Health(), "hub": hub.Stats()}
		})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry on http://%s/metrics\n", srv.Addr())
	}
	exec := edgeslice.NewRemoteExecutorWithOptions(hub, edgeslice.RemoteOptions{
		Timeout: o.timeout, RetryPeriods: o.retryPeriods,
	})
	defer func() { _ = exec.Close() }()
	remaining := o.periods
	if prefix != nil {
		remaining -= prefix.Periods()
		if remaining <= 0 {
			fmt.Printf("history log already holds %d period(s); nothing to run\n", prefix.Periods())
			return printRunReport(prefix, exec)
		}
	}
	fmt.Printf("coordinator listening on %s, waiting for %d agents...\n", hub.Addr(), o.ras)
	if err := hub.WaitRegistered(o.timeout); err != nil {
		return err
	}
	h, err := sys.RunPeriodsWith(exec, remaining)
	if err != nil {
		if h != nil && h.Periods() > 0 {
			fmt.Printf("run failed after %d completed period(s): %v\n", h.Periods(), err)
		}
		return err
	}
	if prefix != nil {
		if err := prefix.Append(h); err != nil {
			return err
		}
		h = prefix
	}
	return printRunReport(h, exec)
}

// printRunReport prints the run's per-period table (or streaming summary)
// and closes the executor.
func printRunReport(h *edgeslice.History, exec edgeslice.Executor) error {
	if h.Streaming() {
		if err := printStreamingSummary(h); err != nil {
			return err
		}
		return exec.Close()
	}
	fmt.Println("period | per-slice performance (sum over RAs) | SLA met | residuals")
	for p := 0; p < h.Periods(); p++ {
		perf := make([]float64, h.NumSlices)
		for i := range perf {
			for j := 0; j < h.NumRAs; j++ {
				perf[i] += h.PeriodPerf[p][i][j]
			}
		}
		fmt.Printf("%6d | %v | %v | primal=%.2f dual=%.2f\n",
			p, perf, h.SLAMet[p], h.Primal[p], h.Dual[p])
	}
	mp, err := h.MeanSystemPerf(h.Intervals() / 2)
	if err != nil {
		return err
	}
	sla, err := h.SLASatisfactionRate(0)
	if err != nil {
		return err
	}
	fmt.Printf("\nsteady-state system performance: %.2f per interval\n", mp)
	fmt.Printf("SLA satisfaction: %.0f%%\n", sla*100)
	return exec.Close()
}

// printStreamingSummary reports what a bounded-memory run retains: online
// summaries instead of the full per-period table.
func printStreamingSummary(h *edgeslice.History) error {
	fmt.Printf("streaming history (window %d): %d periods, %d intervals retained as summaries\n",
		h.StreamWindow(), h.Periods(), h.Intervals())
	mp, err := h.MeanSystemPerf(h.Intervals() / 2)
	if err != nil {
		return err
	}
	sla, err := h.SLASatisfactionRate(0)
	if err != nil {
		return err
	}
	fmt.Printf("steady-state system performance: %.2f per interval\n", mp)
	fmt.Printf("SLA satisfaction: %.0f%%\n", sla*100)
	primal, dual := h.LastResiduals()
	fmt.Printf("final residuals: primal=%.2f dual=%.2f\n", primal, dual)
	return nil
}

func runCoordinator(listen string, slices, ras, shards, periods int, timeout time.Duration, metricsAddr string, heartbeat time.Duration) error {
	hub, err := edgeslice.NewShardedHub(listen, slices, ras, shards)
	if err != nil {
		return err
	}
	defer func() { _ = hub.Shutdown() }()
	if heartbeat > 0 {
		hub.SetLiveness(4 * heartbeat)
	}
	if metricsAddr != "" {
		reg := edgeslice.NewTelemetryRegistry()
		hub.EnableTelemetry(reg)
		srv, err := edgeslice.StartTelemetry(metricsAddr, reg, func() any {
			return map[string]any{"hub": hub.Stats()}
		})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry on http://%s/metrics\n", srv.Addr())
	}
	fmt.Printf("coordinator listening on %s, waiting for %d agents...\n", hub.Addr(), ras)
	if err := hub.WaitRegistered(timeout); err != nil {
		return err
	}
	umin := make([]float64, slices)
	for i := range umin {
		umin[i] = -50
	}
	coord, err := edgeslice.NewCoordinator(slices, ras, 1.0, umin)
	if err != nil {
		return err
	}
	history, err := edgeslice.RunCoordinator(hub, coord, periods, timeout)
	if err != nil {
		return err
	}
	for p, perf := range history {
		fmt.Printf("period %d: perf=%v\n", p, perf)
	}
	primal, dual := coord.Residuals()
	fmt.Printf("final residuals: primal=%.3f dual=%.3f\n", primal, dual)
	return hub.Shutdown()
}

// loadPolicy resolves the agent's policy: a trained checkpoint from disk,
// or a freshly trained one. The policy object is independent of any
// connection, so reconnect attempts reuse it.
func loadPolicy(ra int, agentFile string, train int, seed int64) (edgeslice.Agent, error) {
	if agentFile != "" {
		f, err := os.Open(agentFile)
		if err != nil {
			return nil, fmt.Errorf("open agent file: %w", err)
		}
		policy, err := edgeslice.LoadAgent(f)
		cerr := f.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
		fmt.Printf("RA %d: loaded policy from %s\n", ra, agentFile)
		return policy, nil
	}
	fmt.Printf("RA %d: training fresh agent (%d steps)...\n", ra, train)
	cfg := edgeslice.DefaultConfig()
	cfg.NumRAs = 1
	cfg.TrainSteps = train
	cfg.Seed = seed + int64(ra)
	sys, err := edgeslice.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Train(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := edgeslice.SaveAgent(&buf, sys, 0); err != nil {
		return nil, err
	}
	return edgeslice.LoadAgent(&buf)
}

// runAgentLoop runs the agent with up to reconnect redial attempts after a
// lost connection. Every (re)connection rebuilds the environment from its
// deterministic seed — RunAgent's resume replay then fast-forwards it to
// the run's current period — while the trained policy is loaded once and
// reused. The telemetry server outlives individual connections: its
// counters read whichever client is current (and reset across
// reconnections, the usual counter-restart semantics).
func runAgentLoop(connect string, ra, slices int, agentFile string, train int, seed int64, timeout time.Duration, metricsAddr string, heartbeat time.Duration, reconnect int, codec edgeslice.Codec) error {
	if reconnect < 0 {
		return fmt.Errorf("-reconnect must be >= 0, got %d", reconnect)
	}
	policy, err := loadPolicy(ra, agentFile, train, seed)
	if err != nil {
		return err
	}
	var cur atomic.Pointer[edgeslice.AgentClient]
	if metricsAddr != "" {
		reg := edgeslice.NewTelemetryRegistry()
		stat := func(read func(edgeslice.AgentStats) uint64) func() uint64 {
			return func() uint64 {
				if c := cur.Load(); c != nil {
					return read(c.Stats())
				}
				return 0
			}
		}
		reg.CounterFunc("edgeslice_agent_reports_sent_total",
			"perf reports sent to the hub",
			stat(func(s edgeslice.AgentStats) uint64 { return s.ReportsSent }))
		reg.CounterFunc("edgeslice_agent_coordinations_received_total",
			"coordination messages received from the hub",
			stat(func(s edgeslice.AgentStats) uint64 { return s.CoordsReceived }))
		reg.CounterFunc("edgeslice_agent_heartbeats_sent_total",
			"heartbeat frames sent to the hub",
			stat(func(s edgeslice.AgentStats) uint64 { return s.HeartbeatsSent }))
		srv, err := edgeslice.StartTelemetry(metricsAddr, reg, func() any {
			payload := map[string]any{"ra": ra, "coordinator": connect}
			if c := cur.Load(); c != nil {
				payload["stats"] = c.Stats()
			}
			return payload
		})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("RA %d: telemetry on http://%s/metrics\n", ra, srv.Addr())
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			fmt.Printf("RA %d: connection lost (%v), redialing (attempt %d/%d)\n", ra, lastErr, attempt, reconnect)
		}
		done, err := runAgentOnce(connect, ra, slices, policy, seed, timeout, heartbeat, codec, &cur)
		if done {
			if err != nil {
				return err
			}
			fmt.Printf("RA %d: coordinator finished, shutting down\n", ra)
			return nil
		}
		lastErr = err
		if attempt >= reconnect {
			return lastErr
		}
	}
}

// runAgentOnce is one connection's lifetime: fresh env, dial, register,
// serve until shutdown (done=true) or a connection error (done=false,
// worth redialing).
func runAgentOnce(connect string, ra, slices int, policy edgeslice.Agent, seed int64, timeout time.Duration, heartbeat time.Duration, codec edgeslice.Codec, cur *atomic.Pointer[edgeslice.AgentClient]) (done bool, err error) {
	envCfg := edgeslice.DefaultEnvConfig()
	if slices != envCfg.NumSlices {
		return true, fmt.Errorf("daemon presets support %d slices, got %d", envCfg.NumSlices, slices)
	}
	envCfg.TrainCoordRandom = false
	envCfg.Seed = seed + int64(ra)*7919
	env, err := edgeslice.NewEnv(envCfg)
	if err != nil {
		return true, err
	}
	env.Reset()

	client, err := edgeslice.DialAgentCodec(connect, ra, timeout, codec)
	if err != nil {
		return false, err
	}
	cur.Store(client)
	defer func() { _ = client.Close() }()
	if heartbeat > 0 {
		stop := client.StartHeartbeat(heartbeat)
		defer stop()
	}
	fmt.Printf("RA %d: connected to %s\n", ra, connect)
	if err := edgeslice.RunAgent(client, env, policy, timeout); err != nil {
		return false, err
	}
	return true, nil
}
