// Command edgeslice-train trains an EdgeSlice orchestration agent offline
// against the simulated network environment (Sec. VI-B) and saves it as a
// full-fidelity checkpoint (format edgeslice-checkpoint-v2: actor,
// critic(s), target networks, optimizer moments, RNG cursor) for later
// deployment with edgeslice-daemon or the library's LoadAgent — or for
// exact training resume. Pass -replay to also capture the replay buffer
// (bigger file, needed only for resume).
//
// Usage:
//
//	edgeslice-train -out agent.json [-steps 12000] [-nt] [-seed 1] [-replay]
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeslice-train: %v\n", err)
		os.Exit(1)
	}
}

// run uses a named return so the deferred Close can surface flush errors:
// a full disk or yanked volume must not report a truncated checkpoint as
// "saved".
func run() (err error) {
	var (
		out    = flag.String("out", "", "output file for the trained agent checkpoint (required)")
		steps  = flag.Int("steps", 12000, "training steps")
		nt     = flag.Bool("nt", false, "train the EdgeSlice-NT variant (no queue observation)")
		seed   = flag.Int64("seed", 1, "random seed")
		replay = flag.Bool("replay", false, "include the replay buffer (for exact training resume)")
	)
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	cfg := edgeslice.DefaultConfig()
	cfg.NumRAs = 1 // a single shared agent; deploy to any number of RAs
	cfg.TrainSteps = *steps
	cfg.Seed = *seed
	if *nt {
		cfg.Algo = edgeslice.AlgoEdgeSliceNT
	}

	sys, err := edgeslice.NewSystem(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("training %s for %d steps...\n", cfg.Algo, *steps)
	if err := sys.Train(); err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	opts := edgeslice.CheckpointOptions{IncludeReplay: *replay}
	if err := edgeslice.SaveCheckpoint(f, sys, opts); err != nil {
		return err
	}
	fmt.Printf("saved checkpoint to %s\n", *out)
	return nil
}
