// Command edgeslice-train trains an EdgeSlice orchestration agent offline
// against the simulated network environment (Sec. VI-B) and saves the actor
// network as JSON for later deployment with edgeslice-daemon or the
// library's LoadAgent.
//
// Usage:
//
//	edgeslice-train -out agent.json [-steps 12000] [-nt] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeslice-train: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out   = flag.String("out", "", "output file for the trained actor (required)")
		steps = flag.Int("steps", 12000, "training steps")
		nt    = flag.Bool("nt", false, "train the EdgeSlice-NT variant (no queue observation)")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	cfg := edgeslice.DefaultConfig()
	cfg.NumRAs = 1 // a single shared agent; deploy to any number of RAs
	cfg.TrainSteps = *steps
	cfg.Seed = *seed
	if *nt {
		cfg.Algo = edgeslice.AlgoEdgeSliceNT
	}

	sys, err := edgeslice.NewSystem(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("training %s for %d steps...\n", cfg.Algo, *steps)
	if err := sys.Train(); err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := edgeslice.SaveAgent(f, sys, 0); err != nil {
		return err
	}
	fmt.Printf("saved actor to %s\n", *out)
	return nil
}
