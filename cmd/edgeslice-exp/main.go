// Command edgeslice-exp regenerates the paper's evaluation figures
// (Figs. 6-11) and prints their data series as text tables.
//
// Usage:
//
//	edgeslice-exp [-fig all|fig6|fig7|fig8|fig9|fig10|fig11]
//	              [-train 12000] [-periods 10] [-seed 1]
//
// It can also replay an on-disk history log (written by edgeslice-sim
// -history or edgeslice-daemon -history) into the same per-period table
// and steady-state summary a live run prints:
//
//	edgeslice-exp -replay run.histlog
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeslice-exp: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: all, fig6 ... fig11")
		train   = flag.Int("train", 12000, "agent training steps")
		periods = flag.Int("periods", 10, "orchestration periods per run")
		seed    = flag.Int64("seed", 1, "random seed")
		replay  = flag.String("replay", "", "replay an on-disk history log and print its summary instead of running figures")
	)
	flag.Parse()

	if *replay != "" {
		return runReplay(*replay)
	}

	o := edgeslice.DefaultExperimentOptions()
	o.TrainSteps = *train
	o.Periods = *periods
	o.Seed = *seed

	runs := map[string]func() error{
		"fig6": func() error {
			a, b, err := edgeslice.Fig6(o)
			return printAll(err, a, b)
		},
		"fig7": func() error {
			figs, err := edgeslice.Fig7(o)
			return printAll(err, figs...)
		},
		"fig8": func() error {
			cdf, ratios, err := edgeslice.Fig8(o)
			if err != nil {
				return err
			}
			return printAll(nil, append([]*edgeslice.Figure{cdf}, ratios...)...)
		},
		"fig9": func() error {
			a, b, err := edgeslice.Fig9(o)
			return printAll(err, a, b)
		},
		"fig10": func() error {
			a, b, err := edgeslice.Fig10(o)
			return printAll(err, a, b)
		},
		"fig11": func() error {
			a, b, err := edgeslice.Fig11(o)
			return printAll(err, a, b)
		},
	}

	if *fig != "all" {
		f, ok := runs[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %q (want all, fig6 ... fig11)", *fig)
		}
		return f()
	}
	for _, id := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		fmt.Printf("\n######## %s ########\n", id)
		if err := runs[id](); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

// runReplay reconstructs a History from an append-only history log and
// prints the same per-period table and summary a live exact-mode run does.
func runReplay(path string) error {
	h, truncated, err := edgeslice.ReplayHistoryLog(path)
	if err != nil {
		return fmt.Errorf("replay %s: %w", path, err)
	}
	if truncated {
		fmt.Fprintf(os.Stderr, "warning: %s has a truncated tail (crashed writer?); replaying the complete prefix\n", path)
	}
	fmt.Printf("%s: %d RAs, %d slices, %d periods x %d intervals\n",
		path, h.NumRAs, h.NumSlices, h.Periods(), h.T)
	fmt.Println("period | per-slice performance (sum over RAs) | SLA met | residuals")
	for p := 0; p < h.Periods(); p++ {
		perf := make([]float64, h.NumSlices)
		for i := range perf {
			for j := 0; j < h.NumRAs; j++ {
				perf[i] += h.PeriodPerf[p][i][j]
			}
		}
		fmt.Printf("%6d | %v | %v | primal=%.2f dual=%.2f\n",
			p, perf, h.SLAMet[p], h.Primal[p], h.Dual[p])
	}
	if h.Intervals() == 0 {
		return nil
	}
	mp, err := h.MeanSystemPerf(h.Intervals() / 2)
	if err != nil {
		return err
	}
	sla, err := h.SLASatisfactionRate(0)
	if err != nil {
		return err
	}
	viol, err := h.ViolationRate()
	if err != nil {
		return err
	}
	fmt.Printf("\nsteady-state system performance: %.2f per interval\n", mp)
	fmt.Printf("SLA satisfaction: %.0f%%\n", sla*100)
	fmt.Printf("SLA violation rate: %.3f\n", viol)
	return nil
}

func printAll(err error, figs ...*edgeslice.Figure) error {
	if err != nil {
		return err
	}
	for _, f := range figs {
		if err := edgeslice.WriteFigureTable(os.Stdout, f); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
