// Command edgeslice-exp regenerates the paper's evaluation figures
// (Figs. 6-11) and prints their data series as text tables.
//
// Usage:
//
//	edgeslice-exp [-fig all|fig6|fig7|fig8|fig9|fig10|fig11]
//	              [-train 12000] [-periods 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeslice-exp: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: all, fig6 ... fig11")
		train   = flag.Int("train", 12000, "agent training steps")
		periods = flag.Int("periods", 10, "orchestration periods per run")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	o := edgeslice.DefaultExperimentOptions()
	o.TrainSteps = *train
	o.Periods = *periods
	o.Seed = *seed

	runs := map[string]func() error{
		"fig6": func() error {
			a, b, err := edgeslice.Fig6(o)
			return printAll(err, a, b)
		},
		"fig7": func() error {
			figs, err := edgeslice.Fig7(o)
			return printAll(err, figs...)
		},
		"fig8": func() error {
			cdf, ratios, err := edgeslice.Fig8(o)
			if err != nil {
				return err
			}
			return printAll(nil, append([]*edgeslice.Figure{cdf}, ratios...)...)
		},
		"fig9": func() error {
			a, b, err := edgeslice.Fig9(o)
			return printAll(err, a, b)
		},
		"fig10": func() error {
			a, b, err := edgeslice.Fig10(o)
			return printAll(err, a, b)
		},
		"fig11": func() error {
			a, b, err := edgeslice.Fig11(o)
			return printAll(err, a, b)
		},
	}

	if *fig != "all" {
		f, ok := runs[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %q (want all, fig6 ... fig11)", *fig)
		}
		return f()
	}
	for _, id := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		fmt.Printf("\n######## %s ########\n", id)
		if err := runs[id](); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func printAll(err error, figs ...*edgeslice.Figure) error {
	if err != nil {
		return err
	}
	for _, f := range figs {
		if err := edgeslice.WriteFigureTable(os.Stdout, f); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
