// Command edgeslice-lint runs the EdgeSlice invariant analyzers
// (internal/analysis) over the module: map-iteration determinism
// (maporder), seeded-clock discipline (walltime), allocation-free warm
// paths (noalloc), no blocking I/O under a mutex (lockio), precomputed
// metric names (metricname), and no silently dropped deferred Close
// errors (deferclose).
//
// Usage:
//
//	edgeslice-lint [-only names] [-list] [packages]
//
// Packages default to ./... (the whole module). A pattern may be ./...,
// a directory like ./internal/core, or a directory tree like
// ./internal/rl/... . Exit status: 0 clean, 1 diagnostics reported,
// 2 usage or load failure. Findings are suppressed line-by-line with
// //edgeslice:<key> <reason> directives; see internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"edgeslice/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s (suppress: //edgeslice:%s <reason>)\n", a.Name, a.Doc, a.SuppressKey)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fatalf("unknown analyzer %q (use -list)", name)
		}
		analyzers = filtered
	}

	root, modulePath, err := findModule()
	if err != nil {
		fatalf("%v", err)
	}
	loader := analysis.NewLoader(root, modulePath)
	pkgs, err := loader.LoadTree()
	if err != nil {
		fatalf("%v", err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := filterPackages(pkgs, patterns, root, modulePath)
	if err != nil {
		fatalf("%v", err)
	}

	diags := analysis.RunAnalyzers(selected, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "edgeslice-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModule walks up from the working directory to the enclosing go.mod
// and returns the module root and path.
func findModule() (root, modulePath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// filterPackages selects the loaded packages matching the given patterns.
func filterPackages(pkgs []*analysis.Package, patterns []string, root, modulePath string) ([]*analysis.Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	keep := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "." && recursive && samePath(cwd, root) {
			for _, p := range pkgs {
				keep[p.Path] = true
			}
			continue
		}
		// Resolve the pattern to an import path, accepting either a
		// directory (./internal/core) or an import path (edgeslice/...).
		var ip string
		if pat == modulePath || strings.HasPrefix(pat, modulePath+"/") {
			ip = pat
		} else {
			abs, err := filepath.Abs(pat)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("pattern %q is outside module %s", pat, modulePath)
			}
			if rel == "." {
				ip = modulePath
			} else {
				ip = modulePath + "/" + filepath.ToSlash(rel)
			}
		}
		matched := false
		for _, p := range pkgs {
			if p.Path == ip || (recursive && strings.HasPrefix(p.Path, ip+"/")) {
				keep[p.Path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		if keep[p.Path] {
			out = append(out, p)
		}
	}
	return out, nil
}

func samePath(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "edgeslice-lint: "+format+"\n", args...)
	os.Exit(2)
}
