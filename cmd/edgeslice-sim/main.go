// Command edgeslice-sim runs an end-to-end EdgeSlice orchestration
// simulation. It has two modes:
//
// Classic mode trains the orchestration agents (for learning algorithms),
// executes Algorithm 1 for the requested number of periods, and prints
// per-period performance, SLA status, and the steady-state summary:
//
//	edgeslice-sim [-algo edgeslice|edgeslice-nt|taro|equal] [-periods 10]
//	              [-ras 2] [-train 12000] [-seed 1]
//	              [-engine serial|parallel] [-workers N]
//
// Both modes accept -engine/-workers to choose the Algorithm-1 execution
// engine: "serial" steps RAs one after another, "parallel" steps all RAs
// concurrently on a persistent worker pool. Results are bit-identical
// across engines and worker counts; only wall-clock changes.
//
// Scenario mode runs a declarative workload scenario — a built-in name or a
// JSON spec file — through the parallel sharded replica runner and prints
// the aggregated summary (mean/p5/p95 of steady-state system performance
// and SLA-violation rate per algorithm):
//
//	edgeslice-sim -list-scenarios
//	edgeslice-sim -scenario flash-crowd [-replicas 4] [-parallel 4] [-seed 1]
//	edgeslice-sim -scenario my-workload.json -replicas 8
//
// In scenario mode, -warm-start trains each learning algorithm once and
// clones the trained policy into every replica instead of retraining per
// replica; -ckpt-dir additionally caches the trained checkpoints on disk
// (keyed by algorithm, config hash, seed, and train steps) so repeated
// invocations skip training entirely. Setting -ckpt-dir implies
// -warm-start:
//
//	edgeslice-sim -scenario flash-crowd -replicas 8 -warm-start
//	edgeslice-sim -scenario flash-crowd -replicas 8 -ckpt-dir ~/.cache/edgeslice
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeslice-sim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName = flag.String("algo", "edgeslice", "algorithm: edgeslice, edgeslice-nt, taro, equal")
		periods  = flag.Int("periods", 10, "orchestration periods to run")
		ras      = flag.Int("ras", 2, "number of resource autonomies")
		train    = flag.Int("train", 12000, "agent training steps")
		seed     = flag.Int64("seed", 1, "random seed")

		engine  = flag.String("engine", "serial", "execution engine: serial or parallel (bit-identical; parallel steps all RAs concurrently)")
		workers = flag.Int("workers", 0, "parallel engine worker-pool size (0 = one per RA in scenario mode, GOMAXPROCS in classic mode)")

		scenarioName = flag.String("scenario", "", "run a named built-in scenario or a JSON spec file")
		listScen     = flag.Bool("list-scenarios", false, "list built-in scenarios and exit")
		replicas     = flag.Int("replicas", 1, "scenario replicas (seeds) per algorithm")
		parallel     = flag.Int("parallel", 0, "scenario worker pool size (0 = GOMAXPROCS)")
		warmStart    = flag.Bool("warm-start", false, "train each learning algorithm once and clone the policy into every replica")
		ckptDir      = flag.String("ckpt-dir", "", "checkpoint cache directory (implies -warm-start)")
	)
	flag.Parse()

	if *listScen {
		return listScenarios(os.Stdout)
	}
	if *engine == "remote" {
		return fmt.Errorf("the remote engine runs under edgeslice-daemon (-role coordinator); -engine here accepts serial or parallel")
	}
	if *scenarioName != "" {
		// Scenarios define their own topology, schedule, algorithms, and
		// training budget; explicitly set classic-mode flags would be
		// silently ignored, so reject them instead.
		for _, name := range []string{"algo", "periods", "ras", "train"} {
			if flagWasSet(name) {
				return fmt.Errorf("-%s applies to classic mode only; scenarios declare it in the spec", name)
			}
		}
		return runScenario(*scenarioName, *replicas, *parallel, *seed, flagWasSet("seed"),
			*warmStart || *ckptDir != "", *ckptDir, *engine, *workers)
	}
	for _, name := range []string{"replicas", "parallel", "warm-start", "ckpt-dir"} {
		if flagWasSet(name) {
			return fmt.Errorf("-%s applies to scenario mode only; pass -scenario to use the replica runner", name)
		}
	}
	return runClassic(*algoName, *periods, *ras, *train, *seed, *engine, *workers)
}

// flagWasSet reports whether a flag was given explicitly (e.g. scenario
// specs carry their own seed; an explicit -seed overrides it).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func listScenarios(w *os.File) error {
	for _, name := range edgeslice.ListScenarios() {
		spec, err := edgeslice.GetScenario(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %s\n", name, spec.Description)
	}
	return nil
}

// loadScenario resolves a built-in name or a JSON spec path.
func loadScenario(nameOrFile string) (edgeslice.Scenario, error) {
	if !strings.HasSuffix(nameOrFile, ".json") {
		return edgeslice.GetScenario(nameOrFile)
	}
	f, err := os.Open(nameOrFile)
	if err != nil {
		return edgeslice.Scenario{}, err
	}
	defer f.Close()
	return edgeslice.DecodeScenario(f)
}

func runScenario(nameOrFile string, replicas, parallel int, seed int64, seedSet, warmStart bool, ckptDir, engine string, workers int) error {
	spec, err := loadScenario(nameOrFile)
	if err != nil {
		return err
	}
	if seedSet {
		spec.Seed = seed
	}
	fmt.Printf("scenario %s: %d RA(s), %d slice(s), %d period(s) x %d interval(s), algorithms %v\n",
		spec.Name, spec.NumRAs, len(spec.Slices), spec.Periods, spec.T, spec.Algorithms)
	opts := edgeslice.ScenarioOptions{
		Replicas:      replicas,
		Parallel:      parallel,
		Engine:        engine,
		Workers:       workers,
		WarmStart:     warmStart,
		CheckpointDir: ckptDir,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "replica %d/%d done\n", done, total)
		},
	}
	summary, err := edgeslice.RunScenario(spec, opts)
	if err != nil {
		return err
	}
	fmt.Println()
	return edgeslice.WriteScenarioSummary(os.Stdout, summary)
}

func runClassic(algoName string, periods, ras, train int, seed int64, engine string, workers int) error {
	algo, err := edgeslice.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	exec, err := edgeslice.NewExecutor(engine, workers)
	if err != nil {
		return err
	}
	defer func() { _ = exec.Close() }()
	cfg := edgeslice.DefaultConfig()
	cfg.Algo = algo
	cfg.NumRAs = ras
	cfg.TrainSteps = train
	cfg.Seed = seed

	sys, err := edgeslice.NewSystem(cfg)
	if err != nil {
		return err
	}
	if algo == edgeslice.AlgoEdgeSlice || algo == edgeslice.AlgoEdgeSliceNT {
		fmt.Printf("training %s agents (%d steps)...\n", algo, train)
	}
	if err := sys.Train(); err != nil {
		return err
	}
	h, err := sys.RunPeriodsWith(exec, periods)
	if err != nil {
		return err
	}

	fmt.Printf("\n%s: %d RAs, %d slices, %d periods x %d intervals\n",
		algo, ras, cfg.EnvTemplate.NumSlices, periods, cfg.EnvTemplate.T)
	fmt.Println("period | per-slice performance (sum over RAs) | SLA met | residuals")
	for p := 0; p < h.Periods(); p++ {
		perf := make([]float64, h.NumSlices)
		for i := range perf {
			for j := 0; j < h.NumRAs; j++ {
				perf[i] += h.PeriodPerf[p][i][j]
			}
		}
		fmt.Printf("%6d | %v | %v | primal=%.2f dual=%.2f\n",
			p, fmtVec(perf), h.SLAMet[p], h.Primal[p], h.Dual[p])
	}
	mp, err := h.MeanSystemPerf(h.Intervals() / 2)
	if err != nil {
		return err
	}
	sla, err := h.SLASatisfactionRate(0)
	if err != nil {
		return err
	}
	fmt.Printf("\nsteady-state system performance: %.2f per interval\n", mp)
	fmt.Printf("SLA satisfaction: %.0f%%\n", sla*100)
	return nil
}

func fmtVec(v []float64) string {
	out := "["
	for i, x := range v {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.1f", x)
	}
	return out + "]"
}
