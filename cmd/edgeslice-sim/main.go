// Command edgeslice-sim runs an end-to-end EdgeSlice orchestration
// simulation. It has two modes:
//
// Classic mode trains the orchestration agents (for learning algorithms),
// executes Algorithm 1 for the requested number of periods, and prints
// per-period performance, SLA status, and the steady-state summary:
//
//	edgeslice-sim [-algo edgeslice|edgeslice-nt|taro|equal] [-periods 10]
//	              [-ras 2] [-train 12000] [-seed 1]
//	              [-engine serial|parallel|batched] [-workers N]
//
// Both modes accept -engine/-workers to choose the Algorithm-1 execution
// engine: "serial" steps RAs one after another, "parallel" steps all RAs
// concurrently on a persistent worker pool, and "batched" gathers all RA
// observations each interval into one wide forward pass per policy group.
// Results are bit-identical across engines and worker counts; only
// wall-clock changes.
//
// Scenario mode runs a declarative workload scenario — a built-in name or a
// JSON spec file — through the parallel sharded replica runner and prints
// the aggregated summary (mean/p5/p95 of steady-state system performance
// and SLA-violation rate per algorithm):
//
//	edgeslice-sim -list-scenarios
//	edgeslice-sim -scenario flash-crowd [-replicas 4] [-parallel 4] [-seed 1]
//	edgeslice-sim -scenario my-workload.json -replicas 8
//
// In scenario mode, -warm-start trains each learning algorithm once and
// clones the trained policy into every replica instead of retraining per
// replica; -ckpt-dir additionally caches the trained checkpoints on disk
// (keyed by algorithm, config hash, seed, and train steps) so repeated
// invocations skip training entirely. Setting -ckpt-dir implies
// -warm-start:
//
//	edgeslice-sim -scenario flash-crowd -replicas 8 -warm-start
//	edgeslice-sim -scenario flash-crowd -replicas 8 -ckpt-dir ~/.cache/edgeslice
//
// Telemetry (both modes, all opt-in; defaults leave output and memory
// behaviour untouched):
//
//	-metrics-addr 127.0.0.1:9090   serve /metrics, /healthz and /debug/pprof
//	-stream-window 1024            bounded-memory streaming history
//	-history run.histlog           classic: append-only on-disk history log
//	-history logs/                 scenario: one log per replica in this dir
//
// With -stream-window the classic per-period table is unavailable (only
// bounded summaries are retained), so a steady-state summary is printed
// instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeslice-sim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName = flag.String("algo", "edgeslice", "algorithm: edgeslice, edgeslice-nt, taro, equal")
		periods  = flag.Int("periods", 10, "orchestration periods to run")
		ras      = flag.Int("ras", 2, "number of resource autonomies")
		train    = flag.Int("train", 12000, "agent training steps")
		seed     = flag.Int64("seed", 1, "random seed")

		engine  = flag.String("engine", "serial", "execution engine: serial, parallel, or batched (bit-identical; parallel steps RAs concurrently, batched runs one wide forward per policy group)")
		workers = flag.Int("workers", 0, "parallel worker-pool size / batched matmul shards (0 = one per RA in scenario mode, GOMAXPROCS in classic mode)")

		scenarioName = flag.String("scenario", "", "run a named built-in scenario or a JSON spec file")
		listScen     = flag.Bool("list-scenarios", false, "list built-in scenarios and exit")
		replicas     = flag.Int("replicas", 1, "scenario replicas (seeds) per algorithm")
		parallel     = flag.Int("parallel", 0, "scenario worker pool size (0 = GOMAXPROCS)")
		warmStart    = flag.Bool("warm-start", false, "train each learning algorithm once and clone the policy into every replica")
		ckptDir      = flag.String("ckpt-dir", "", "checkpoint cache directory (implies -warm-start)")

		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		streamWindow = flag.Int("stream-window", 0, "bounded-memory streaming history with this ring window (0 = exact in-memory history)")
		historyPath  = flag.String("history", "", "on-disk history log: a file in classic mode, a directory (one log per replica) in scenario mode")
		resume       = flag.Bool("resume", false, "scenario: skip replicas whose -history log already holds the full run (recompute their summaries from the log)")
	)
	flag.Parse()

	if *listScen {
		return listScenarios(os.Stdout)
	}
	if *engine == "remote" {
		return fmt.Errorf("the remote engine runs under edgeslice-daemon (-role coordinator); -engine here accepts serial, parallel, or batched")
	}
	if *scenarioName != "" {
		// Scenarios define their own topology, schedule, algorithms, and
		// training budget; explicitly set classic-mode flags would be
		// silently ignored, so reject them instead.
		for _, name := range []string{"algo", "periods", "ras", "train"} {
			if flagWasSet(name) {
				return fmt.Errorf("-%s applies to classic mode only; scenarios declare it in the spec", name)
			}
		}
		if *resume && *historyPath == "" {
			return fmt.Errorf("-resume needs -history: the logs are what the replicas resume from")
		}
		return runScenario(*scenarioName, *replicas, *parallel, *seed, flagWasSet("seed"),
			*warmStart || *ckptDir != "", *ckptDir, *engine, *workers,
			*metricsAddr, *streamWindow, *historyPath, *resume)
	}
	for _, name := range []string{"replicas", "parallel", "warm-start", "ckpt-dir", "resume"} {
		if flagWasSet(name) {
			return fmt.Errorf("-%s applies to scenario mode only; pass -scenario to use the replica runner", name)
		}
	}
	return runClassic(*algoName, *periods, *ras, *train, *seed, *engine, *workers,
		*metricsAddr, *streamWindow, *historyPath)
}

// flagWasSet reports whether a flag was given explicitly (e.g. scenario
// specs carry their own seed; an explicit -seed overrides it).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func listScenarios(w *os.File) error {
	for _, name := range edgeslice.ListScenarios() {
		spec, err := edgeslice.GetScenario(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %s\n", name, spec.Description)
	}
	return nil
}

// loadScenario resolves a built-in name or a JSON spec path.
func loadScenario(nameOrFile string) (edgeslice.Scenario, error) {
	if !strings.HasSuffix(nameOrFile, ".json") {
		return edgeslice.GetScenario(nameOrFile)
	}
	f, err := os.Open(nameOrFile)
	if err != nil {
		return edgeslice.Scenario{}, err
	}
	// Read-only handle: decode errors surface from DecodeScenario; the
	// close error is dropped deliberately.
	defer func() { _ = f.Close() }()
	return edgeslice.DecodeScenario(f)
}

func runScenario(nameOrFile string, replicas, parallel int, seed int64, seedSet, warmStart bool, ckptDir, engine string, workers int, metricsAddr string, streamWindow int, historyDir string, resume bool) error {
	spec, err := loadScenario(nameOrFile)
	if err != nil {
		return err
	}
	if seedSet {
		spec.Seed = seed
	}
	fmt.Printf("scenario %s: %d RA(s), %d slice(s), %d period(s) x %d interval(s), algorithms %v\n",
		spec.Name, spec.NumRAs, len(spec.Slices), spec.Periods, spec.T, spec.Algorithms)
	var replicasDone atomic.Uint64
	opts := edgeslice.ScenarioOptions{
		Replicas:      replicas,
		Parallel:      parallel,
		Engine:        engine,
		Workers:       workers,
		WarmStart:     warmStart,
		CheckpointDir: ckptDir,
		StreamWindow:  streamWindow,
		HistoryLogDir: historyDir,
		Resume:        resume,
		Progress: func(done, total int) {
			replicasDone.Store(uint64(done))
			fmt.Fprintf(os.Stderr, "replica %d/%d done\n", done, total)
		},
	}
	if metricsAddr != "" {
		totalRuns := uint64(len(spec.Algorithms) * replicas)
		reg := edgeslice.NewTelemetryRegistry()
		reg.CounterFunc("edgeslice_scenario_replicas_done_total",
			"Scenario replica runs completed.", replicasDone.Load)
		reg.GaugeFunc("edgeslice_scenario_replicas",
			"Scenario replica runs scheduled (algorithms x replicas).",
			func() float64 { return float64(totalRuns) })
		srv, err := edgeslice.StartTelemetry(metricsAddr, reg, func() any {
			return map[string]any{
				"scenario":      spec.Name,
				"algorithms":    spec.Algorithms,
				"replicas_done": replicasDone.Load(),
				"replicas":      totalRuns,
			}
		})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", srv.Addr())
	}
	summary, err := edgeslice.RunScenario(spec, opts)
	if err != nil {
		return err
	}
	fmt.Println()
	if summary.Resumed > 0 {
		fmt.Printf("resumed %d replica(s) from history logs\n", summary.Resumed)
	}
	return edgeslice.WriteScenarioSummary(os.Stdout, summary)
}

func runClassic(algoName string, periods, ras, train int, seed int64, engine string, workers int, metricsAddr string, streamWindow int, historyPath string) error {
	algo, err := edgeslice.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	exec, err := edgeslice.NewExecutor(engine, workers)
	if err != nil {
		return err
	}
	defer func() { _ = exec.Close() }()
	cfg := edgeslice.DefaultConfig()
	cfg.Algo = algo
	cfg.NumRAs = ras
	cfg.TrainSteps = train
	cfg.Seed = seed

	sys, err := edgeslice.NewSystem(cfg)
	if err != nil {
		return err
	}
	rec := edgeslice.RecordOptions{StreamWindow: streamWindow}
	if historyPath != "" {
		hlog, err := edgeslice.CreateHistoryLog(historyPath, cfg.EnvTemplate.NumSlices, ras, cfg.EnvTemplate.T)
		if err != nil {
			return err
		}
		defer func() { _ = hlog.Close() }()
		rec.Log = hlog
	}
	sys.SetRecording(rec)
	if metricsAddr != "" {
		reg := edgeslice.NewTelemetryRegistry()
		sys.EnableTelemetry(reg)
		if pe, ok := exec.(interface {
			EnableTelemetry(*edgeslice.TelemetryRegistry)
		}); ok {
			pe.EnableTelemetry(reg)
		}
		srv, err := edgeslice.StartTelemetry(metricsAddr, reg, func() any { return sys.Health() })
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", srv.Addr())
	}
	if algo == edgeslice.AlgoEdgeSlice || algo == edgeslice.AlgoEdgeSliceNT {
		fmt.Printf("training %s agents (%d steps)...\n", algo, train)
	}
	if err := sys.Train(); err != nil {
		return err
	}
	h, err := sys.RunPeriodsWith(exec, periods)
	if err != nil {
		return err
	}

	fmt.Printf("\n%s: %d RAs, %d slices, %d periods x %d intervals\n",
		algo, ras, cfg.EnvTemplate.NumSlices, periods, cfg.EnvTemplate.T)
	if h.Streaming() {
		return printStreamingSummary(h)
	}
	fmt.Println("period | per-slice performance (sum over RAs) | SLA met | residuals")
	for p := 0; p < h.Periods(); p++ {
		perf := make([]float64, h.NumSlices)
		for i := range perf {
			for j := 0; j < h.NumRAs; j++ {
				perf[i] += h.PeriodPerf[p][i][j]
			}
		}
		fmt.Printf("%6d | %v | %v | primal=%.2f dual=%.2f\n",
			p, fmtVec(perf), h.SLAMet[p], h.Primal[p], h.Dual[p])
	}
	mp, err := h.MeanSystemPerf(h.Intervals() / 2)
	if err != nil {
		return err
	}
	sla, err := h.SLASatisfactionRate(0)
	if err != nil {
		return err
	}
	fmt.Printf("\nsteady-state system performance: %.2f per interval\n", mp)
	fmt.Printf("SLA satisfaction: %.0f%%\n", sla*100)
	return nil
}

// printStreamingSummary reports what a bounded-memory run retains: online
// summaries instead of the full per-period table.
func printStreamingSummary(h *edgeslice.History) error {
	fmt.Printf("streaming history (window %d): %d periods, %d intervals retained as summaries\n",
		h.StreamWindow(), h.Periods(), h.Intervals())
	mp, err := h.MeanSystemPerf(h.Intervals() / 2)
	if err != nil {
		return err
	}
	sla, err := h.SLASatisfactionRate(0)
	if err != nil {
		return err
	}
	viol, err := h.ViolationRate()
	if err != nil {
		return err
	}
	fmt.Printf("steady-state system performance: %.2f per interval\n", mp)
	for _, q := range []float64{0.05, 0.5, 0.95} {
		v, err := h.SystemPerfQuantile(q)
		if err != nil {
			return err
		}
		fmt.Printf("system performance p%g: %.2f\n", q*100, v)
	}
	fmt.Printf("SLA satisfaction: %.0f%%\n", sla*100)
	fmt.Printf("SLA violation rate: %.3f\n", viol)
	primal, dual := h.LastResiduals()
	fmt.Printf("final residuals: primal=%.2f dual=%.2f\n", primal, dual)
	return nil
}

func fmtVec(v []float64) string {
	out := "["
	for i, x := range v {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.1f", x)
	}
	return out + "]"
}
