// Command edgeslice-sim runs an end-to-end EdgeSlice orchestration
// simulation: it trains the orchestration agents (for learning algorithms),
// executes Algorithm 1 for the requested number of periods, and prints
// per-period performance, SLA status, and the steady-state summary.
//
// Usage:
//
//	edgeslice-sim [-algo edgeslice|edgeslice-nt|taro|equal] [-periods 10]
//	              [-ras 2] [-train 12000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "edgeslice-sim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName = flag.String("algo", "edgeslice", "algorithm: edgeslice, edgeslice-nt, taro, equal")
		periods  = flag.Int("periods", 10, "orchestration periods to run")
		ras      = flag.Int("ras", 2, "number of resource autonomies")
		train    = flag.Int("train", 12000, "agent training steps")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	algo, err := parseAlgo(*algoName)
	if err != nil {
		return err
	}
	cfg := edgeslice.DefaultConfig()
	cfg.Algo = algo
	cfg.NumRAs = *ras
	cfg.TrainSteps = *train
	cfg.Seed = *seed

	sys, err := edgeslice.NewSystem(cfg)
	if err != nil {
		return err
	}
	if algo == edgeslice.AlgoEdgeSlice || algo == edgeslice.AlgoEdgeSliceNT {
		fmt.Printf("training %s agents (%d steps)...\n", algo, *train)
	}
	if err := sys.Train(); err != nil {
		return err
	}
	h, err := sys.RunPeriods(*periods)
	if err != nil {
		return err
	}

	fmt.Printf("\n%s: %d RAs, %d slices, %d periods x %d intervals\n",
		algo, *ras, cfg.EnvTemplate.NumSlices, *periods, cfg.EnvTemplate.T)
	fmt.Println("period | per-slice performance (sum over RAs) | SLA met | residuals")
	for p := 0; p < h.Periods(); p++ {
		perf := make([]float64, h.NumSlices)
		for i := range perf {
			for j := 0; j < h.NumRAs; j++ {
				perf[i] += h.PeriodPerf[p][i][j]
			}
		}
		fmt.Printf("%6d | %v | %v | primal=%.2f dual=%.2f\n",
			p, fmtVec(perf), h.SLAMet[p], h.Primal[p], h.Dual[p])
	}
	mp, err := h.MeanSystemPerf(h.Intervals() / 2)
	if err != nil {
		return err
	}
	sla, err := h.SLASatisfactionRate(0)
	if err != nil {
		return err
	}
	fmt.Printf("\nsteady-state system performance: %.2f per interval\n", mp)
	fmt.Printf("SLA satisfaction: %.0f%%\n", sla*100)
	return nil
}

func parseAlgo(name string) (edgeslice.Algorithm, error) {
	switch name {
	case "edgeslice":
		return edgeslice.AlgoEdgeSlice, nil
	case "edgeslice-nt":
		return edgeslice.AlgoEdgeSliceNT, nil
	case "taro":
		return edgeslice.AlgoTARO, nil
	case "equal":
		return edgeslice.AlgoEqualShare, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func fmtVec(v []float64) string {
	out := "["
	for i, x := range v {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.1f", x)
	}
	return out + "]"
}
