// Package edgeslice is a pure-Go reproduction of "EdgeSlice: Slicing
// Wireless Edge Computing Network with Decentralized Deep Reinforcement
// Learning" (Liu, Han, Moges — ICDCS 2020): a decentralized resource
// orchestration system for dynamic end-to-end network slicing.
//
// The public API exposes four layers:
//
//   - System assembly and Algorithm-1 orchestration (NewSystem, Config,
//     System.Train, System.RunPeriods) — the D-DRL loop coupling the ADMM
//     performance coordinator with per-RA DDPG orchestration agents.
//   - Execution engines (Executor, NewSerialExecutor, NewParallelExecutor,
//     NewRemoteExecutor, System.RunPeriodsWith) — interchangeable serial,
//     parallel per-RA, and distributed implementations of Algorithm 1's
//     per-period phases, bit-identical across engines and worker counts.
//   - Environment construction (EnvConfig, AppProfile, sources) — the
//     simulated wireless edge computing network of Sec. VI-B.
//   - Distributed deployment (NewHub, DialAgent, RunCoordinator, RunAgent)
//     — the RC interface over TCP for running the coordinator and agents
//     as separate processes.
//   - Experiments (Fig6 … Fig11, Options) — regenerate every evaluation
//     figure of the paper.
//   - Scenarios (ListScenarios, GetScenario, RunScenario) — declarative
//     workload scenarios (traffic programs with timed events) executed by a
//     parallel sharded replica runner, with an opt-in warm-start mode that
//     trains each algorithm once and clones the policy into every replica.
//   - Checkpoints (SaveCheckpoint, LoadCheckpoint, SaveAgent, LoadAgent) —
//     versioned full-fidelity persistence of trained agents: networks,
//     optimizer moments, and RNG cursor, for bitwise-identical deployment
//     and exact training resume.
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package edgeslice

import (
	"io"
	"time"

	"edgeslice/internal/admm"
	"edgeslice/internal/ckpt"
	"edgeslice/internal/core"
	"edgeslice/internal/experiments"
	"edgeslice/internal/mathutil"
	"edgeslice/internal/netsim"
	"edgeslice/internal/rcnet"
	"edgeslice/internal/rl"
	"edgeslice/internal/scenario"
	"edgeslice/internal/telemetry"
	"edgeslice/internal/traffic"
)

// Core orchestration types.
type (
	// Config assembles a full EdgeSlice system (RAs, environment,
	// algorithm, training budget).
	Config = core.Config
	// System is an assembled deployment: per-RA environments and agents
	// plus the performance coordinator.
	System = core.System
	// History captures per-interval and per-period results of a run.
	History = core.History
	// Algorithm selects the orchestration policy.
	Algorithm = core.Algorithm
)

// Environment types (the simulated wireless edge computing network).
type (
	// EnvConfig configures one resource autonomy's environment.
	EnvConfig = netsim.Config
	// Env is a simulated resource autonomy; it implements the RL
	// environment interface and the orchestration-mode API.
	Env = netsim.RAEnv
	// AppProfile models a slice application's per-domain resource demand.
	AppProfile = netsim.AppProfile
	// TrafficSource yields per-interval expected arrival rates.
	TrafficSource = traffic.Source
	// Trace is a set of per-area diurnal traffic profiles.
	Trace = traffic.Trace
)

// Agent is a trained orchestration policy.
type Agent = rl.Agent

// Executor is an execution engine for Algorithm 1: the same three phases
// per period (distribute coordination, step T intervals in every RA,
// collect Σ_t U and run the ADMM update) behind interchangeable
// implementations — serial in-process stepping, parallel per-RA stepping
// on a persistent worker pool (bit-identical to serial for any worker
// count), batched cross-RA inference (one wide forward pass per policy
// group per interval, bit-identical to serial), or remote agents over the
// RC network interface (recording the same History, monitor series, SLA
// flags, and residuals as local runs).
type Executor = core.Executor

// Engine spellings for NewExecutor and the -engine CLI flags.
const (
	EngineSerial   = core.EngineSerial
	EngineParallel = core.EngineParallel
	EngineBatched  = core.EngineBatched
	EngineRemote   = core.EngineRemote
)

// Checkpoint types (versioned, full-fidelity agent persistence).
type (
	// Checkpoint is a full-fidelity snapshot of a trained system: per
	// agent the actor, critic(s), target networks, optimizer moments, and
	// RNG cursor, restorable for bitwise-identical deployment or exact
	// training resume.
	Checkpoint = ckpt.Checkpoint
	// CheckpointOptions configures what a snapshot captures (e.g. the
	// replay buffer, needed only for exact training resume).
	CheckpointOptions = ckpt.SnapshotOptions
	// CheckpointStore is a content-addressed on-disk checkpoint cache
	// keyed by (algorithm, config hash, seed, train steps).
	CheckpointStore = ckpt.Store
)

// Coordinator is the ADMM performance coordinator.
type Coordinator = admm.Coordinator

// Distributed-deployment types (RC interface over TCP).
type (
	// Hub is the coordinator-side network endpoint, internally sharded for
	// parallel broadcast and collection (NewShardedHub).
	Hub = rcnet.Hub
	// HubStats is a snapshot of the hub's lifetime counters, including
	// wire-level traffic.
	HubStats = rcnet.HubStats
	// AgentClient is the orchestration-agent-side endpoint.
	AgentClient = rcnet.AgentClient
	// AgentStats is a snapshot of an agent client's lifetime counters.
	AgentStats = rcnet.AgentStats
	// Codec selects the coordination plane's wire encoding: CodecJSON (the
	// compatibility default) or CodecBinary (length-prefixed packed frames).
	Codec = rcnet.Codec
)

// Wire codecs for the coordination plane.
const (
	CodecJSON   = rcnet.CodecJSON
	CodecBinary = rcnet.CodecBinary
)

// Scenario-engine types (declarative workloads and the parallel runner).
type (
	// Scenario is a declarative workload scenario: topology, slice mix,
	// traffic program with timed events, schedule, and algorithms.
	Scenario = scenario.Spec
	// ScenarioSlice declares one slice of a scenario.
	ScenarioSlice = scenario.SliceSpec
	// ScenarioTraffic declares a slice's base traffic source.
	ScenarioTraffic = scenario.TrafficSpec
	// ScenarioEvent is a timed entry of a scenario's traffic program.
	ScenarioEvent = scenario.Event
	// ScenarioOptions configures the parallel replica runner.
	ScenarioOptions = scenario.Options
	// ScenarioSummary aggregates a scenario run's replicas.
	ScenarioSummary = scenario.Summary
)

// Telemetry types (the streaming observability layer).
type (
	// TelemetryRegistry is a named metric collection with a Prometheus
	// text exposition; subsystems (System, Hub, AgentClient, the parallel
	// executor) export their counters through one shared registry.
	TelemetryRegistry = telemetry.Registry
	// TelemetryServer serves /metrics, /healthz, and /debug/pprof.
	TelemetryServer = telemetry.Server
	// RecordOptions selects a System's recording mode: streaming
	// (bounded-memory) summaries and/or the append-only on-disk history
	// log.
	RecordOptions = core.RecordOptions
	// HistoryLog is the append-only CRC-checked on-disk record of a run,
	// replayable into a full exact History.
	HistoryLog = core.HistoryLog
	// SystemHealth is the /healthz payload: run progress, last residuals,
	// per-slice SLA state.
	SystemHealth = core.SystemHealth
)

// NewTelemetryRegistry creates an empty metric registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// StartTelemetry serves the registry on addr: /metrics (Prometheus text),
// /healthz (JSON from health, or the registry snapshot when nil), and the
// pprof handlers under /debug/pprof/.
func StartTelemetry(addr string, reg *TelemetryRegistry, health func() any) (*TelemetryServer, error) {
	return telemetry.StartServer(addr, reg, health)
}

// NewStreamingHistory allocates a bounded-memory History: per metric a
// ring of the most recent window samples plus online summaries (count,
// running mean, min/max, P² quantile sketches), answering the same
// accessor API as the exact mode in O(window) memory.
func NewStreamingHistory(numSlices, numRAs, t, window int) *History {
	return core.NewStreamingHistory(numSlices, numRAs, t, window)
}

// CreateHistoryLog creates (truncating) an on-disk history log for a run
// of the given shape.
func CreateHistoryLog(path string, numSlices, numRAs, t int) (*HistoryLog, error) {
	return core.CreateHistoryLog(path, numSlices, numRAs, t)
}

// ReplayHistoryLog reconstructs the exact History a history-log file
// records. truncated reports a partial tail (crashed writer): every
// complete record before it is recovered.
func ReplayHistoryLog(path string) (h *History, truncated bool, err error) {
	return core.ReplayHistoryLogFile(path)
}

// OpenHistoryLogAppend reopens a history log for a resumed run: it replays
// the longest whole-period prefix, cuts off the crashed tail, and returns
// a log that appends in place plus the prefix History (feed it to
// System.PrimeFromHistory).
func OpenHistoryLogAppend(path string) (*HistoryLog, *History, error) {
	return core.OpenHistoryLogAppend(path)
}

// Experiment types.
type (
	// ExperimentOptions scales the figure regeneration runs.
	ExperimentOptions = experiments.Options
	// Figure is a regenerated paper figure.
	Figure = experiments.Figure
	// Series is one line in a figure.
	Series = experiments.Series
)

// Orchestration algorithms (Sec. VII-B).
const (
	AlgoEdgeSlice   = core.AlgoEdgeSlice
	AlgoEdgeSliceNT = core.AlgoEdgeSliceNT
	AlgoTARO        = core.AlgoTARO
	AlgoEqualShare  = core.AlgoEqualShare
)

// Resource domain indices of the three technical domains.
const (
	ResRadio     = netsim.ResRadio
	ResTransport = netsim.ResTransport
	ResCompute   = netsim.ResCompute
	NumResources = netsim.NumResources
)

// NewSystem builds an EdgeSlice system from a configuration.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// ParseAlgorithm resolves the CLI/scenario spelling of an algorithm
// ("edgeslice", "edgeslice-nt", "taro", "equal").
func ParseAlgorithm(name string) (Algorithm, error) { return core.ParseAlgorithm(name) }

// DefaultConfig returns the prototype-experiment system of Sec. VII-C
// (2 slices, 2 RAs, video-analytics workloads) at CI training scale.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultEnvConfig returns the prototype-experiment environment.
func DefaultEnvConfig() EnvConfig { return netsim.DefaultExperimentConfig() }

// NewEnv creates a simulated resource-autonomy environment.
func NewEnv(cfg EnvConfig) (*Env, error) { return netsim.New(cfg) }

// SaveAgent serializes RA ra's trained agent as a single-agent checkpoint
// any supported training algorithm round-trips (format
// edgeslice-checkpoint-v2). Legacy v1 actor snapshots remain loadable with
// LoadAgent; core.SaveAgent still writes them for DDPG actors.
func SaveAgent(w io.Writer, sys *System, ra int) error {
	c, err := sys.AgentCheckpoint(ra, ckpt.SnapshotOptions{})
	if err != nil {
		return err
	}
	return ckpt.Write(w, c)
}

// LoadAgent restores a policy saved with SaveAgent or edgeslice-train —
// either a v2 checkpoint or a legacy v1 actor snapshot. The returned agent
// is safe for concurrent Act calls.
func LoadAgent(r io.Reader) (Agent, error) { return core.LoadAgent(r) }

// SaveCheckpoint writes the system's trained agents (all RAs, or the one
// shared agent) as a full-fidelity v2 checkpoint.
func SaveCheckpoint(w io.Writer, sys *System, opts CheckpointOptions) error {
	return core.SaveCheckpoint(w, sys, opts)
}

// LoadCheckpoint parses a v2 checkpoint for System.Restore.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) { return core.LoadCheckpoint(r) }

// OpenCheckpointStore opens (creating if needed) an on-disk checkpoint
// cache, the backing of the scenario runner's warm-start mode.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) { return ckpt.OpenStore(dir) }

// NewExecutor resolves an in-process engine spelling: "serial" (or empty),
// "parallel", or "batched" (workers ≤ 0 defaults to GOMAXPROCS). Run
// periods with System.RunPeriodsWith and Close the executor when done.
func NewExecutor(engine string, workers int) (Executor, error) {
	return core.NewExecutor(engine, workers)
}

// NewSerialExecutor returns the serial in-process engine
// (System.RunPeriods' default).
func NewSerialExecutor() Executor { return core.NewSerialExecutor() }

// NewParallelExecutor returns the parallel in-process engine: a persistent
// per-RA worker pool stepping all RAs concurrently each period, with
// results bit-identical to the serial engine for any worker count.
func NewParallelExecutor(workers int) Executor { return core.NewParallelExecutor(workers) }

// NewBatchedExecutor returns the batched in-process engine: every interval
// it gathers all RA observations and runs one wide forward pass per policy
// group (workers shard the matmul), with results bit-identical to the
// serial engine for any worker count.
func NewBatchedExecutor(workers int) Executor { return core.NewBatchedExecutor(workers) }

// NewRemoteExecutor returns the distributed engine: the step phase runs in
// remote agent processes connected to the hub, and their per-interval
// reports are merged into the same History a local run records. Close
// shuts the hub down.
func NewRemoteExecutor(hub *Hub, timeout time.Duration) Executor {
	return core.NewRemoteExecutor(hub, timeout)
}

// RemoteOptions tunes the remote engine's fault handling (collect timeout,
// in-flight period retries against re-registered agents).
type RemoteOptions = core.RemoteOptions

// NewRemoteExecutorWithOptions returns the distributed engine with explicit
// fault-handling options.
func NewRemoteExecutorWithOptions(hub *Hub, opts RemoteOptions) Executor {
	return core.NewRemoteExecutorWithOptions(hub, opts)
}

// NewHub starts the coordinator-side RC endpoint on addr (single shard).
func NewHub(addr string, numSlices, numRAs int) (*Hub, error) {
	return rcnet.NewHub(addr, numSlices, numRAs)
}

// NewShardedHub starts the coordinator-side RC endpoint with the RA space
// split across shards, each broadcasting and collecting in parallel under
// its own lock. Runs are bit-identical for any shard count.
func NewShardedHub(addr string, numSlices, numRAs, shards int) (*Hub, error) {
	return rcnet.NewShardedHub(addr, numSlices, numRAs, shards)
}

// ParseCodec resolves a wire-codec CLI spelling ("json", "binary", or ""
// for the JSON default).
func ParseCodec(s string) (Codec, error) { return rcnet.ParseCodec(s) }

// DialAgent connects an orchestration agent to the hub with the JSON wire
// codec.
func DialAgent(addr string, ra int, timeout time.Duration) (*AgentClient, error) {
	return rcnet.DialAgent(addr, ra, timeout)
}

// DialAgentCodec connects an orchestration agent to the hub with an
// explicit wire codec; the hub answers the connection in the same codec.
func DialAgentCodec(addr string, ra int, timeout time.Duration, codec Codec) (*AgentClient, error) {
	return rcnet.DialAgentCodec(addr, ra, timeout, codec)
}

// RunCoordinator drives Algorithm 1 from the hub side.
func RunCoordinator(h *Hub, coord *Coordinator, periods int, timeout time.Duration) ([][][]float64, error) {
	return rcnet.RunCoordinator(h, coord, periods, timeout)
}

// RunAgent drives one RA from the agent side until shutdown.
func RunAgent(c *AgentClient, env *Env, agent Agent, timeout time.Duration) error {
	return rcnet.RunAgent(c, env, agent, timeout)
}

// NewCoordinator creates a standalone ADMM performance coordinator (used
// with the distributed API; NewSystem embeds its own).
func NewCoordinator(numSlices, numRAs int, rho float64, umin []float64) (*Coordinator, error) {
	return admm.NewCoordinator(admm.Config{
		NumSlices: numSlices, NumRAs: numRAs, Rho: rho, UminPerSlice: umin,
	})
}

// SynthesizeTrace builds a Trento-like diurnal traffic trace with the given
// number of geographic areas (see DESIGN.md §5 for the substitution note).
func SynthesizeTrace(seed int64, numAreas int) (*Trace, error) {
	return traffic.SynthesizeTrentoLike(mathutil.NewRNG(seed), numAreas)
}

// ListScenarios returns the names of the built-in workload scenarios.
func ListScenarios() []string { return scenario.List() }

// GetScenario returns a built-in scenario by name.
func GetScenario(name string) (Scenario, error) { return scenario.Get(name) }

// DecodeScenario parses and validates a JSON scenario spec.
func DecodeScenario(r io.Reader) (Scenario, error) { return scenario.DecodeJSON(r) }

// RunScenario executes a scenario's replicas (seeds × algorithms) across a
// bounded worker pool and aggregates the results; the summary is identical
// for any parallelism setting.
func RunScenario(spec Scenario, opts ScenarioOptions) (*ScenarioSummary, error) {
	return scenario.Run(spec, opts)
}

// WriteScenarioSummary renders a scenario summary as an aligned text table.
func WriteScenarioSummary(w io.Writer, s *ScenarioSummary) error {
	return scenario.WriteSummary(w, s)
}

// DefaultExperimentOptions returns CI-scale experiment settings.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// Fig6 regenerates the convergence figure (system and slice performance vs
// time interval).
func Fig6(o ExperimentOptions) (*Figure, *Figure, error) { return experiments.Fig6(o) }

// Fig7 regenerates the per-domain resource orchestration figures.
func Fig7(o ExperimentOptions) ([]*Figure, error) { return experiments.Fig7(o) }

// Fig8 regenerates the agent-performance CDF and the usage-ratio grids.
func Fig8(o ExperimentOptions) (*Figure, []*Figure, error) { return experiments.Fig8(o) }

// Fig9 regenerates the scalability figures (per-RA and per-slice).
func Fig9(o ExperimentOptions) (*Figure, *Figure, error) { return experiments.Fig9(o) }

// Fig10 regenerates the training-technique figures (steps sweep and the
// DDPG/SAC/PPO/TRPO/VPG comparison).
func Fig10(o ExperimentOptions) (*Figure, *Figure, error) { return experiments.Fig10(o) }

// Fig11 regenerates the compatibility figures (alpha sweep and the
// service-time-metric CDF).
func Fig11(o ExperimentOptions) (*Figure, *Figure, error) { return experiments.Fig11(o) }

// WriteFigureTable renders a figure as an aligned text table.
func WriteFigureTable(w io.Writer, fig *Figure) error { return experiments.WriteTable(w, fig) }
