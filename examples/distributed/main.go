// Distributed deployment: runs the EdgeSlice performance coordinator and
// two orchestration agents as separate network endpoints on localhost,
// speaking the RC protocol over real TCP (Sec. V-D). In production the
// agents would run on different machines next to their RAs; here they run
// in goroutines so the example is self-contained — the wire traffic is
// identical.
package main

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"time"

	"edgeslice"
)

const timeout = 2 * time.Minute

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "distributed: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		numSlices = 2
		numRAs    = 2
		periods   = 6
	)

	// Train one shared policy first (in production: edgeslice-train once,
	// ship the checkpoint to every agent host — the train-once /
	// evaluate-many workflow of Sec. V).
	fmt.Println("training shared orchestration policy...")
	trainCfg := edgeslice.DefaultConfig()
	trainCfg.NumRAs = 1
	trainCfg.TrainSteps = 8000
	trainSys, err := edgeslice.NewSystem(trainCfg)
	if err != nil {
		return err
	}
	if err := trainSys.Train(); err != nil {
		return err
	}

	hub, err := edgeslice.NewHub("127.0.0.1:0", numSlices, numRAs)
	if err != nil {
		return err
	}
	defer func() { _ = hub.Shutdown() }()
	fmt.Printf("coordinator hub listening on %s\n", hub.Addr())

	var wg sync.WaitGroup
	errs := make(chan error, numRAs)
	for ra := 0; ra < numRAs; ra++ {
		wg.Add(1)
		go func(ra int) {
			defer wg.Done()
			if err := agentProcess(hub.Addr(), ra, trainSys); err != nil {
				errs <- fmt.Errorf("RA %d: %w", ra, err)
			}
		}(ra)
	}

	if err := hub.WaitRegistered(timeout); err != nil {
		return err
	}
	fmt.Println("all agents registered; running Algorithm 1...")

	umin := []float64{-50, -50}
	coord, err := edgeslice.NewCoordinator(numSlices, numRAs, 1.0, umin)
	if err != nil {
		return err
	}
	history, err := edgeslice.RunCoordinator(hub, coord, periods, timeout)
	if err != nil {
		return err
	}
	for p, perf := range history {
		var total float64
		for i := range perf {
			for j := range perf[i] {
				total += perf[i][j]
			}
		}
		fmt.Printf("period %d: total performance %.1f\n", p, total)
	}
	if err := hub.Shutdown(); err != nil {
		return err
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	fmt.Println("distributed orchestration finished cleanly")
	return nil
}

// agentProcess is what each agent host runs: load the policy, build the
// local environment, connect to the coordinator, serve periods until
// shutdown.
func agentProcess(addr string, ra int, trained *edgeslice.System) error {
	envCfg := edgeslice.DefaultEnvConfig()
	envCfg.TrainCoordRandom = false
	envCfg.Seed = int64(ra+1) * 7919
	env, err := edgeslice.NewEnv(envCfg)
	if err != nil {
		return err
	}
	env.Reset()

	// Serialize/deserialize the trained policy as a full-fidelity
	// checkpoint — the same bytes the edgeslice-train CLI writes to disk.
	var buf bytes.Buffer
	if err := edgeslice.SaveCheckpoint(&buf, trained, edgeslice.CheckpointOptions{}); err != nil {
		return err
	}
	policy, err := edgeslice.LoadAgent(&buf)
	if err != nil {
		return err
	}

	client, err := edgeslice.DialAgent(addr, ra, timeout)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	return edgeslice.RunAgent(client, env, policy, timeout)
}
