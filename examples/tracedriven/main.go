// Trace-driven simulation: the paper's Sec. VII-D setting scaled for a
// demo — multiple RAs whose slice traffic follows synthesized Trento-like
// diurnal profiles (one geographic area per RA), T = 24 hourly intervals
// per period. The example writes the trace to CSV, builds the multi-RA
// system, and compares EdgeSlice with TARO over several simulated days.
package main

import (
	"fmt"
	"os"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tracedriven: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const numRAs = 4 // demo scale; Fig. 9 sweeps 5-20

	// Synthesize the diurnal trace and persist it (the CSV round-trips via
	// the traffic loader, so a real export can be dropped in instead).
	trace, err := edgeslice.SynthesizeTrace(42, numRAs)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp("", "trento-like-*.csv")
	if err != nil {
		return err
	}
	if err := trace.WriteCSV(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("synthesized %d-area diurnal trace -> %s\n", trace.NumAreas(), f.Name())

	for _, algo := range []edgeslice.Algorithm{edgeslice.AlgoEdgeSlice, edgeslice.AlgoTARO} {
		cfg := edgeslice.DefaultConfig()
		cfg.Algo = algo
		cfg.NumRAs = numRAs
		cfg.TrainSteps = 8000
		cfg.EnvTemplate.T = 24 // hourly intervals, one-day periods

		// Each RA draws its traffic from its own geographic area. At daily
		// mean 10 the diurnal peak (~1.8x) exceeds the provisioned
		// capacity, so the peak hours are genuinely congested — the regime
		// where queue-aware orchestration pays off most.
		perRA := make([]*edgeslice.EnvConfig, numRAs)
		for j := 0; j < numRAs; j++ {
			envCfg := cfg.EnvTemplate
			src0, err := trace.AreaProfile(j, 10)
			if err != nil {
				return err
			}
			src1, err := trace.AreaProfile((j+1)%numRAs, 10)
			if err != nil {
				return err
			}
			envCfg.Sources = []edgeslice.TrafficSource{src0, src1}
			perRA[j] = &envCfg
		}
		cfg.EnvPerRA = perRA

		sys, err := edgeslice.NewSystem(cfg)
		if err != nil {
			return err
		}
		if err := sys.Train(); err != nil {
			return err
		}
		h, err := sys.RunPeriods(5) // five simulated days
		if err != nil {
			return err
		}
		perf, err := h.MeanSystemPerf(h.Intervals() / 2)
		if err != nil {
			return err
		}
		sla, err := h.SLASatisfactionRate(0)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s steady-state perf %10.2f per interval, SLA %3.0f%%\n",
			algo.String()+":", perf, sla*100)
	}
	return nil
}
