// Quickstart: assemble the paper's prototype-experiment system (2 network
// slices, 2 resource autonomies, video-analytics workloads), train the
// orchestration agents, run Algorithm 1, and print the results.
package main

import (
	"fmt"
	"os"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Configure the system. DefaultConfig is the paper's Sec. VII-C
	//    experiment at CI training scale; everything is overridable.
	cfg := edgeslice.DefaultConfig()
	cfg.TrainSteps = 6000 // keep the demo under ~10 s

	// 2. Build and train.
	sys, err := edgeslice.NewSystem(cfg)
	if err != nil {
		return err
	}
	fmt.Println("training DDPG orchestration agents...")
	if err := sys.Train(); err != nil {
		return err
	}

	// 3. Run the decentralized orchestration loop (Algorithm 1).
	history, err := sys.RunPeriods(8)
	if err != nil {
		return err
	}

	// 4. Inspect the results.
	fmt.Printf("ran %d intervals across %d RAs\n", history.Intervals(), history.NumRAs)
	perf, err := history.MeanSystemPerf(history.Intervals() / 2)
	if err != nil {
		return err
	}
	fmt.Printf("steady-state system performance: %.2f per interval\n", perf)
	sla, err := history.SLASatisfactionRate(0)
	if err != nil {
		return err
	}
	fmt.Printf("SLA satisfaction: %.0f%%\n", sla*100)
	for i := 0; i < history.NumSlices; i++ {
		for k := 0; k < edgeslice.NumResources; k++ {
			u, err := history.MeanUsage(i, k, 0)
			if err != nil {
				return err
			}
			fmt.Printf("slice %d mean share of resource %d: %.2f\n", i+1, k, u)
		}
	}
	return nil
}
