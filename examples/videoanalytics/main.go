// Video analytics: the paper's motivating workload (Sec. VII-A). Two
// slices offload YOLO object detection to edge GPUs — slice 1 sends
// high-resolution frames (500x500) to a small model (YOLO 320x320), slice 2
// sends low-resolution frames (100x100) to a large model (YOLO 608x608).
// The example compares how EdgeSlice and TARO split the three resource
// domains between these asymmetric applications.
package main

import (
	"fmt"
	"os"

	"edgeslice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "videoanalytics: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	for _, algo := range []edgeslice.Algorithm{edgeslice.AlgoEdgeSlice, edgeslice.AlgoTARO} {
		cfg := edgeslice.DefaultConfig()
		cfg.Algo = algo
		cfg.TrainSteps = 8000
		// Make the two applications explicit (these are also the defaults).
		cfg.EnvTemplate.Apps = []edgeslice.AppProfile{
			{Name: "hd-frames-small-model", FrameResolution: 500, ModelSize: 320},
			{Name: "sd-frames-large-model", FrameResolution: 100, ModelSize: 608},
		}

		sys, err := edgeslice.NewSystem(cfg)
		if err != nil {
			return err
		}
		if err := sys.Train(); err != nil {
			return err
		}
		h, err := sys.RunPeriods(8)
		if err != nil {
			return err
		}

		perf, err := h.MeanSystemPerf(h.Intervals() / 2)
		if err != nil {
			return err
		}
		fmt.Printf("\n=== %s ===\n", algo)
		fmt.Printf("steady-state system performance: %.2f\n", perf)
		names := []string{"radio", "transport", "computing"}
		for i := 0; i < h.NumSlices; i++ {
			fmt.Printf("slice %d (%s):", i+1, cfg.EnvTemplate.Apps[i].Name)
			for k := 0; k < edgeslice.NumResources; k++ {
				u, err := h.MeanUsage(i, k, h.Intervals()/2)
				if err != nil {
					return err
				}
				fmt.Printf("  %s=%.2f", names[k], u)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nEdgeSlice should give slice 1 the radio/transport share and slice 2 the computing share;")
	fmt.Println("TARO splits every domain identically and cannot express that asymmetry (Fig. 7 / Fig. 8).")
	return nil
}
