module edgeslice

go 1.24
