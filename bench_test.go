// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Sec. VII). Each figure benchmark regenerates the figure's
// data series end to end (training included where the algorithm learns) and
// prints the same rows the paper plots; EXPERIMENTS.md records the
// paper-vs-measured comparison. Micro-benchmarks at the bottom cover the
// substrate hot paths.
//
// Run with: go test -bench=. -benchmem
package edgeslice_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"edgeslice"
	"edgeslice/internal/admm"
	"edgeslice/internal/experiments"
	"edgeslice/internal/gpusim"
	"edgeslice/internal/netsim"
	"edgeslice/internal/nn"
	"edgeslice/internal/radio"
	"edgeslice/internal/rl"
	"edgeslice/internal/rl/ddpg"
	"edgeslice/internal/transport"
)

// benchOptions returns the CI-scale experiment settings used by every
// figure benchmark. The paper's 1e6-step TF training maps to 12k pure-Go
// steps (see EXPERIMENTS.md for the scaling discussion).
func benchOptions() edgeslice.ExperimentOptions {
	o := edgeslice.DefaultExperimentOptions()
	o.TrainSteps = 12000
	o.Periods = 10
	return o
}

// printFigures emits the regenerated tables once per benchmark run.
var printedFigs sync.Map

func printFigure(b *testing.B, figs ...*edgeslice.Figure) {
	b.Helper()
	for _, f := range figs {
		if f == nil {
			continue
		}
		if _, done := printedFigs.LoadOrStore(f.ID, true); done {
			continue
		}
		if err := edgeslice.WriteFigureTable(os.Stdout, f); err != nil {
			b.Fatalf("print %s: %v", f.ID, err)
		}
	}
}

// BenchmarkFig6Convergence regenerates Fig. 6: system/slice performance vs
// time interval for EdgeSlice, EdgeSlice-NT, and TARO.
func BenchmarkFig6Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figA, figB, err := edgeslice.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		printFigure(b, figA, figB)
	}
}

// BenchmarkFig7ResourceOrchestration regenerates Fig. 7: normalized radio,
// transport, and computing usage per slice over time under EdgeSlice.
func BenchmarkFig7ResourceOrchestration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := edgeslice.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		printFigure(b, figs...)
	}
}

// BenchmarkFig8CDF regenerates Fig. 8: the CDF of slice performance under
// random traffic and the usage-ratio grids of the three algorithms.
func BenchmarkFig8CDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cdf, ratios, err := edgeslice.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		printFigure(b, cdf)
		printFigure(b, ratios...)
	}
}

// BenchmarkFig9Scalability regenerates Fig. 9: performance per RA vs #RAs
// and performance per slice vs #slices on the trace-driven simulation.
func BenchmarkFig9Scalability(b *testing.B) {
	o := benchOptions()
	o.TrainSteps = 16000 // six sim-scale trainings; larger action spaces need more steps
	o.Periods = 6
	for i := 0; i < b.N; i++ {
		figA, figB, err := edgeslice.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		printFigure(b, figA, figB)
	}
}

// BenchmarkFig10Training regenerates Fig. 10: system performance vs
// training steps and vs training technique (DDPG/SAC/PPO/TRPO/VPG).
func BenchmarkFig10Training(b *testing.B) {
	o := benchOptions()
	o.TrainSteps = 8000
	for i := 0; i < b.N; i++ {
		figA, figB, err := edgeslice.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		printFigure(b, figA, figB)
	}
}

// BenchmarkFig11Compatibility regenerates Fig. 11: system performance vs
// the performance-function exponent α and the service-time-metric CDF.
func BenchmarkFig11Compatibility(b *testing.B) {
	o := benchOptions()
	o.TrainSteps = 8000
	for i := 0; i < b.N; i++ {
		figA, figB, err := edgeslice.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		printFigure(b, figA, figB)
	}
}

// ---- Substrate micro-benchmarks ----

// BenchmarkEnvStep measures one simulated interval of the prototype
// environment (arrivals, service, reward shaping).
func BenchmarkEnvStep(b *testing.B) {
	env, err := netsim.New(netsim.DefaultExperimentConfig())
	if err != nil {
		b.Fatal(err)
	}
	env.Reset()
	action := []float64{0.7, 0.7, 0.2, 0.05, 0.05, 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.StepInterval(action); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDDPGUpdate measures one gradient update of the paper-sized
// (2x128) actor-critic pair with batch 512. One warm-up update runs before
// the timer so the benchmark reports the steady state the training loop
// actually lives in (allocation-free with the nn workspaces).
func BenchmarkDDPGUpdate(b *testing.B) {
	cfg := ddpg.DefaultConfig()
	agent, err := ddpg.New(4, 6, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rngState := []float64{0.1, 0.2, -0.3, -0.4}
	for i := 0; i < cfg.WarmupSteps+1; i++ {
		agent.Observe(rl.Transition{
			State: rngState, Action: []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
			Reward: -1, NextState: rngState,
		})
	}
	if err := agent.Update(); err != nil { // size the workspaces
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agent.Update(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseForwardBackward measures one batch-512 forward+backward
// pass through the paper-sized (2x128) MLP — the inner loop of every
// gradient update.
func BenchmarkDenseForwardBackward(b *testing.B) {
	rng := nnTestRNG()
	net := nn.NewMLP(rng, 10,
		nn.LayerSpec{Out: 128, Act: nn.ActLeakyReLU},
		nn.LayerSpec{Out: 128, Act: nn.ActLeakyReLU},
		nn.LayerSpec{Out: 6, Act: nn.ActSigmoid},
	)
	x := nn.NewMatrix(512, 10)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	g := nn.NewMatrix(512, 6)
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	net.Forward(x) // size the layer workspaces
	net.Backward(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
		net.ZeroGrad()
		net.Backward(g)
	}
}

// BenchmarkPrioritizedSample100k measures one batch-64 prioritized draw
// from a full 100k-capacity buffer — O(log n) per draw on the sum tree
// versus the O(n) prefix scan it replaced.
func BenchmarkPrioritizedSample100k(b *testing.B) {
	const capacity = 100_000
	p, err := rl.NewPrioritizedReplay(capacity, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	rng := nnTestRNG()
	for i := 0; i < capacity; i++ {
		p.Add(rl.Transition{Reward: rng.Float64()})
	}
	idx := make([]int, 64)
	prios := make([]float64, 64)
	for i := range idx {
		idx[i] = rng.Intn(capacity)
		prios[i] = rng.Float64()*2 + 0.01
	}
	if err := p.UpdatePriorities(idx, prios); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := p.Sample(rng, 64, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoordinatorUpdate measures one ADMM iteration at simulation
// scale (5 slices x 10 RAs).
func BenchmarkCoordinatorUpdate(b *testing.B) {
	umin := make([]float64, 5)
	for i := range umin {
		umin[i] = -50
	}
	coord, err := admm.NewCoordinator(admm.Config{NumSlices: 5, NumRAs: 10, Rho: 1, UminPerSlice: umin})
	if err != nil {
		b.Fatal(err)
	}
	perf := make([][]float64, 5)
	for i := range perf {
		perf[i] = make([]float64, 10)
		for j := range perf[i] {
			perf[i][j] = -float64(i*10 + j)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := coord.Update(perf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPRBScheduler measures one LTE subframe of slice-aware PRB
// scheduling with 8 UEs across 2 slices.
func BenchmarkPRBScheduler(b *testing.B) {
	cell, err := radio.NewCell(1, radio.PRBsPer5MHz)
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < 8; u++ {
		imsi := fmt.Sprintf("31015000000%04d", u)
		if err := cell.Attach(radio.S1APAttach{IMSI: imsi, SliceID: u % 2}, 100); err != nil {
			b.Fatal(err)
		}
		if err := cell.AddTraffic(imsi, 1e12); err != nil {
			b.Fatal(err)
		}
	}
	cell.SetSliceShare(0, 0.6)
	cell.SetSliceShare(1, 0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell.ScheduleSubframe()
	}
}

// BenchmarkTransportReconfig measures a hitless bandwidth reconfiguration
// across the prototype's 6 switches.
func BenchmarkTransportReconfig(b *testing.B) {
	switches := make([]*transport.Switch, 6)
	for i := range switches {
		switches[i] = transport.NewSwitch(i)
	}
	mgr, err := transport.NewManager(switches, 80)
	if err != nil {
		b.Fatal(err)
	}
	alloc := []transport.SliceBandwidth{
		{SliceID: 0, RateMbps: 50, IPPairs: [][2]string{{"10.0.0.1", "10.0.1.1"}}},
		{SliceID: 1, RateMbps: 30, IPPairs: [][2]string{{"10.0.0.2", "10.0.1.2"}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc[0].RateMbps = 30 + float64(i%40)
		alloc[1].RateMbps = 50 - float64(i%40)
		if err := mgr.ApplyHitless(alloc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelSplit measures the kernel-split mechanism on a large
// kernel against the prototype's 51200-thread budget.
func BenchmarkKernelSplit(b *testing.B) {
	k := gpusim.Kernel{Threads: 500_000, Duration: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpusim.SplitKernel(k, gpusim.DefaultThreads/4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActorForward measures one paper-sized (2x128) policy inference,
// the per-interval decision cost of a deployed orchestration agent.
func BenchmarkActorForward(b *testing.B) {
	rng := nnTestRNG()
	net := nn.NewMLP(rng, 4,
		nn.LayerSpec{Out: 128, Act: nn.ActLeakyReLU},
		nn.LayerSpec{Out: 128, Act: nn.ActLeakyReLU},
		nn.LayerSpec{Out: 6, Act: nn.ActSigmoid},
	)
	state := []float64{0.1, 0.2, -0.3, -0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward1(state)
	}
}

// BenchmarkScenarioRunner measures the parallel sharded scenario runner's
// replica throughput on the flash-crowd scenario (non-learning algorithm, so
// the cost is pure simulation + aggregation). The serial variant bounds the
// pool at one worker for a speedup baseline.
func BenchmarkScenarioRunner(b *testing.B) {
	spec, err := edgeslice.GetScenario("flash-crowd")
	if err != nil {
		b.Fatal(err)
	}
	spec.Periods = 100 // heavy enough per replica that pool scaling shows
	const replicas = 16
	for _, parallel := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel-%d", parallel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := edgeslice.RunScenario(spec, edgeslice.ScenarioOptions{
					Replicas: replicas, Parallel: parallel,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(replicas*b.N)/b.Elapsed().Seconds(), "replicas/s")
		})
	}
}

// BenchmarkScenarioWarmStart compares cold replica sweeps (every replica
// retrains its agents) against warm-started ones (each learning algorithm
// trains once, replicas restore deep copies of the checkpoint). With R
// replicas the cold variant pays R trainings, the warm variant one; the
// trainings/run metric makes the difference visible alongside wall clock.
func BenchmarkScenarioWarmStart(b *testing.B) {
	spec, err := edgeslice.GetScenario("flash-crowd")
	if err != nil {
		b.Fatal(err)
	}
	spec.Periods = 2
	spec.Events = nil // keep the deployment run tiny; training dominates
	spec.Algorithms = []string{"edgeslice"}
	spec.TrainSteps = 2000
	const replicas = 8
	for _, mode := range []struct {
		name string
		warm bool
	}{{"cold", false}, {"warm", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var trainings int
			for i := 0; i < b.N; i++ {
				s, err := edgeslice.RunScenario(spec, edgeslice.ScenarioOptions{
					Replicas: replicas, WarmStart: mode.warm,
				})
				if err != nil {
					b.Fatal(err)
				}
				trainings += s.Trainings
			}
			b.ReportMetric(float64(trainings)/float64(b.N), "trainings/run")
		})
	}
}

// BenchmarkAblations regenerates the design-choice ablations documented in
// DESIGN.md: the MinShare floor, the reward normalization, and the value of
// central coordination.
func BenchmarkAblations(b *testing.B) {
	o := benchOptions()
	o.TrainSteps = 8000
	for i := 0; i < b.N; i++ {
		for name, fn := range map[string]func(edgeslice.ExperimentOptions) (*edgeslice.Figure, error){
			"minshare":     experiments.AblationMinShare,
			"perfnorm":     experiments.AblationPerfNorm,
			"coordination": experiments.AblationCoordination,
		} {
			fig, err := fn(o)
			if err != nil {
				b.Fatalf("%s: %v", name, err)
			}
			printFigure(b, fig)
		}
	}
}
